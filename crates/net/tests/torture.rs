//! The torture suite: deterministic adversarial clients against a live
//! server.
//!
//! Truncated frames, oversized length prefixes, garbage bytes,
//! pipelined requests, one-byte-at-a-time writes, and mid-request
//! disconnects. The invariants under all of it: answers over the wire
//! are bit-identical to in-process [`QueryService::query`] calls,
//! protocol violations get *structured* errors (never hangs, never
//! panics), and `connections_active` returns to 0 when the clients go
//! away.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qarith_core::afpras::{AfprasOptions, SampleCount};
use qarith_core::{BatchOptions, MeasureOptions, MethodChoice};
use qarith_datagen::{QueryFamily, WorkloadScale};
use qarith_net::frame::{self, HEADER_LEN};
use qarith_net::{Decoded, ErrorKind, NetClient, NetConfig, NetServer, Request};
use qarith_serve::{QueryService, ServeConfig};

/// The serving regime of `serve_bench` at test-friendly parameters.
fn test_options(epsilon: f64, seed: u64) -> MeasureOptions {
    MeasureOptions {
        method: MethodChoice::Afpras,
        afpras: AfprasOptions {
            epsilon,
            samples: SampleCount::Paper,
            seed: seed ^ 0xF1616,
            ..AfprasOptions::default()
        },
        batch: BatchOptions { threads: 1, dedup: true },
        ..MeasureOptions::default()
    }
}

fn test_service() -> Arc<QueryService> {
    let db = qarith_datagen::sales::sales_database(&WorkloadScale::Tiny.params(), 2020);
    let config = ServeConfig { options: test_options(0.1, 77), ..ServeConfig::default() };
    Arc::new(QueryService::new(db, config))
}

/// Short deadlines so misbehavior resolves in test time, fast ticks so
/// drains and reaps are prompt.
fn test_config() -> NetConfig {
    NetConfig {
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        idle_timeout: Duration::from_secs(30),
        tick: Duration::from_millis(2),
        ..NetConfig::default()
    }
}

fn start_server() -> NetServer {
    NetServer::start(test_service(), test_config()).expect("bind loopback")
}

/// Every workload template, the population the serving benches replay.
fn workload_sql() -> Vec<String> {
    QueryFamily::all().iter().flat_map(QueryFamily::queries).map(|q| q.sql).collect()
}

/// Polls until `cond` holds (the server's counters update as handler
/// threads observe disconnects, a tick or two behind the client).
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Reads one raw reply frame off an adversarial socket.
fn read_raw_reply(stream: &mut TcpStream) -> Vec<u8> {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header).expect("reply header");
    let mut payload = vec![0u8; u32::from_be_bytes(header) as usize];
    stream.read_exact(&mut payload).expect("reply payload");
    payload
}

fn expect_error(payload: &[u8], want: ErrorKind) {
    match frame::decode_reply(payload).expect("structured reply") {
        Decoded::Error { kind, .. } => assert_eq!(kind, want),
        other => panic!("expected {want:?} error, got ok reply {other:?}"),
    }
}

/// The μ-relevant bits of a wire reply vs an in-process response:
/// candidate order, ν bit patterns, sample counts, dimensions, tuple
/// display, and the template fingerprint. Provenance flags
/// (cached/rewritten) and `plan_cached` are execution history, not
/// identity, and are deliberately excluded.
fn assert_bit_identical(wire: &Decoded, reference: &qarith_serve::QueryResponse) {
    let Decoded::Reply(reply) = wire else { panic!("expected ok reply, got {wire:?}") };
    assert_eq!(reply.fingerprint, reference.fingerprint);
    assert_eq!(reply.answers.len(), reference.answers.len());
    for (got, want) in reply.answers.iter().zip(&reference.answers) {
        assert_eq!(got.nu_bits, want.certainty.value.to_bits(), "ν must be bit-identical");
        assert_eq!(got.samples, want.certainty.samples as u64);
        assert_eq!(got.dimension, want.certainty.dimension as u64);
        assert_eq!(got.tuple, want.tuple.to_string());
    }
}

#[test]
fn every_workload_answer_is_bit_identical_over_the_wire() {
    let server = start_server();
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    for sql in workload_sql() {
        let reference = server.service().query(&sql).expect("in-process reference");
        let wire = client.query(&sql).expect("wire round trip");
        assert_bit_identical(&wire, &reference);
    }
    drop(client);
    wait_until("all connections closed", || server.stats().connections_active == 0);
    let stats = server.stats();
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.frames_in, stats.frames_out);
}

#[test]
fn truncated_frame_is_reaped_without_a_reply() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Claim 100 bytes, deliver 10, then stall: the read deadline
    // expires and the connection is reaped as a timeout.
    stream.write_all(&100u32.to_be_bytes()).expect("header");
    stream.write_all(b"qarith-que").expect("partial payload");
    wait_until("stalled frame reaped", || server.stats().timeouts >= 1);
    wait_until("connection gone", || server.stats().connections_active == 0);
    assert_eq!(server.stats().frames_in, 0, "a truncated frame never counts as received");
}

#[test]
fn oversized_and_zero_length_prefixes_get_frame_errors() {
    let server = start_server();
    for header in [u32::MAX.to_be_bytes(), 0u32.to_be_bytes(), (2u32 << 20).to_be_bytes()] {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        stream.write_all(&header).expect("header");
        expect_error(&read_raw_reply(&mut stream), ErrorKind::Frame);
        // Framing errors close the connection: next read is EOF.
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).expect("EOF after frame error"), 0);
    }
    wait_until("connections gone", || server.stats().connections_active == 0);
    assert_eq!(server.stats().protocol_errors, 3);
}

#[test]
fn garbage_payload_is_a_proto_error_and_the_connection_survives() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");

    // Well-framed garbage (wrong magic, non-UTF-8): proto errors, one
    // reply each, connection stays up.
    for garbage in [&b"not a qarith request"[..], &[0xff, 0xfe, 0x00, 0x9f][..]] {
        let len = u32::try_from(garbage.len()).expect("fits");
        stream.write_all(&len.to_be_bytes()).expect("header");
        stream.write_all(garbage).expect("payload");
        expect_error(&read_raw_reply(&mut stream), ErrorKind::Proto);
    }

    // The same connection still serves real queries, bit-identically.
    let sql = "SELECT P.id FROM Products P";
    let reference = server.service().query(sql).expect("reference");
    let len =
        u32::try_from(frame::encode_request(&Request { epsilon: None, sql: sql.into() }).len())
            .expect("fits");
    stream.write_all(&len.to_be_bytes()).expect("header");
    stream
        .write_all(frame::encode_request(&Request { epsilon: None, sql: sql.into() }).as_bytes())
        .expect("payload");
    let wire = frame::decode_reply(&read_raw_reply(&mut stream)).expect("decodes");
    assert_bit_identical(&wire, &reference);
    assert_eq!(server.stats().protocol_errors, 2);
}

#[test]
fn rejected_sql_and_option_errors_are_structured_and_survivable() {
    let server = start_server();
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    // SQL the service rejects: err kind=sql, connection survives.
    match client.query("SELECT nothing FROM Nowhere").expect("reply") {
        Decoded::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::Sql);
            assert!(!message.is_empty());
        }
        other => panic!("expected sql error, got {other:?}"),
    }
    // ε mismatch: err kind=proto naming the served value.
    let mismatched = Request { epsilon: Some(0.5), sql: "SELECT P.id FROM Products P".into() };
    match client.roundtrip(&mismatched).expect("reply") {
        Decoded::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::Proto);
            assert!(message.contains("epsilon=0.1"), "names the served ε: {message}");
        }
        other => panic!("expected proto error, got {other:?}"),
    }
    // Matching ε: served normally.
    let matched = Request { epsilon: Some(0.1), sql: "SELECT P.id FROM Products P".into() };
    assert!(matches!(client.roundtrip(&matched).expect("reply"), Decoded::Reply(_)));
    // And the connection is still bit-faithful afterwards.
    let reference = server.service().query("SELECT P.id FROM Products P").expect("reference");
    let wire = client.query("SELECT P.id FROM Products P").expect("wire");
    assert_bit_identical(&wire, &reference);
}

#[test]
fn pipelined_requests_come_back_in_order_and_bit_identical() {
    let server = start_server();
    let sql = workload_sql();
    let references: Vec<_> =
        sql.iter().map(|q| server.service().query(q).expect("reference")).collect();

    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    // Fire every request before reading any reply.
    for q in &sql {
        client.send(&Request { epsilon: None, sql: q.clone() }).expect("pipelined send");
    }
    for reference in &references {
        let wire = client.receive().expect("pipelined reply");
        assert_bit_identical(&wire, reference);
    }
}

#[test]
fn one_byte_at_a_time_writes_are_served_normally() {
    let server = start_server();
    let sql = "SELECT P.id FROM Products P";
    let reference = server.service().query(sql).expect("reference");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream.set_nodelay(true).expect("nodelay");
    let payload = frame::encode_request(&Request { epsilon: None, sql: sql.into() });
    let len = u32::try_from(payload.len()).expect("fits");
    let mut framed = len.to_be_bytes().to_vec();
    framed.extend_from_slice(payload.as_bytes());
    // Dribble the frame one byte per write. The per-frame read budget
    // (500 ms here) is the bound, so keep the dribble well inside it.
    for byte in framed {
        stream.write_all(&[byte]).expect("dribble");
        std::thread::sleep(Duration::from_millis(1));
    }
    let wire = frame::decode_reply(&read_raw_reply(&mut stream)).expect("decodes");
    assert_bit_identical(&wire, &reference);
}

#[test]
fn mid_request_disconnects_always_return_active_to_zero() {
    let server = start_server();
    // A zoo of rude exits: nothing at all, a bare partial header, a
    // header with partial payload, a full request then slam.
    let addr = server.local_addr();
    {
        let _nothing = TcpStream::connect(addr).expect("connect");
    }
    {
        let mut partial_header = TcpStream::connect(addr).expect("connect");
        partial_header.write_all(&[0, 0]).expect("two header bytes");
    }
    {
        let mut partial_payload = TcpStream::connect(addr).expect("connect");
        partial_payload.write_all(&64u32.to_be_bytes()).expect("header");
        partial_payload.write_all(b"qarith-query/1\nSELECT").expect("partial");
    }
    {
        let mut slam = TcpStream::connect(addr).expect("connect");
        let payload = frame::encode_request(&Request {
            epsilon: None,
            sql: "SELECT P.id FROM Products P".into(),
        });
        let len = u32::try_from(payload.len()).expect("fits");
        slam.write_all(&len.to_be_bytes()).expect("header");
        slam.write_all(payload.as_bytes()).expect("payload");
        // Close without reading the reply.
    }
    wait_until("every rude connection reaped", || {
        let stats = server.stats();
        stats.connections_opened == 4 && stats.connections_active == 0
    });
    let stats = server.stats();
    assert_eq!(stats.connections_closed, 4);
    // The slammed request was well-framed and must have been executed.
    assert_eq!(stats.frames_in, 1);
}

/// Reads one HTTP response framed by Content-Length, returning
/// `(status line, headers, body)` and leaving the stream positioned at
/// the next response.
fn read_http_response(stream: &mut TcpStream) -> (String, String, String) {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    while !raw.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).expect("header byte"), 1, "EOF mid-header");
        raw.push(byte[0]);
        assert!(raw.len() < 64 << 10, "unreasonable response header");
    }
    let header = String::from_utf8(raw).expect("UTF-8 header");
    let status = header.lines().next().expect("status line").to_string();
    let length: usize = header
        .lines()
        .find_map(|l| {
            let (key, value) = l.split_once(':')?;
            key.eq_ignore_ascii_case("content-length").then(|| value.trim().parse().ok())?
        })
        .expect("Content-Length header");
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("body");
    (status, header, String::from_utf8(body).expect("UTF-8 body"))
}

#[test]
fn http_keep_alive_serves_sequential_scrapes_on_one_connection() {
    let server = start_server();
    server.service().query("SELECT P.id FROM Products P").expect("warm the tracer");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");

    // Two sequential GETs on the SAME connection — the keep-alive
    // contract the CI metrics-smoke step scrapes with.
    for scrape in 1..=2 {
        stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: torture\r\n\r\n").expect("request");
        let (status, header, body) = read_http_response(&mut stream);
        assert!(status.starts_with("HTTP/1.1 200"), "scrape {scrape}: {status}");
        assert!(
            header.to_ascii_lowercase().contains("connection: keep-alive"),
            "scrape {scrape} not keep-alive: {header}"
        );
        assert!(body.contains("qarith_stage_total_seconds_bucket{le=\"+Inf\"}"));
        assert!(body.contains("# TYPE qarith_stage_measure_seconds histogram"));
    }

    // `GET /slow` rides the same connection; the log is empty (no
    // threshold configured) but the JSON shape is live.
    stream.write_all(b"GET /slow HTTP/1.1\r\nHost: torture\r\n\r\n").expect("request");
    let (status, header, body) = read_http_response(&mut stream);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(header.contains("application/json"), "{header}");
    assert_eq!(body.trim(), "[]");

    // `Connection: close` is honored: one more response, then EOF.
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: torture\r\nConnection: close\r\n\r\n")
        .expect("request");
    let (status, header, _) = read_http_response(&mut stream);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(header.to_ascii_lowercase().contains("connection: close"), "{header}");
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).expect("EOF"), 0, "close honored");
    wait_until("http connection reaped", || server.stats().connections_active == 0);
}

#[test]
fn http_1_0_requests_default_to_close() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("request");
    let (status, header, body) = read_http_response(&mut stream);
    assert!(status.starts_with("HTTP/1.0 200"), "version echoed: {status}");
    assert!(header.to_ascii_lowercase().contains("connection: close"), "{header}");
    assert!(body.contains("qarith_net_frames_in"));
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).expect("EOF"), 0, "1.0 closes by default");
}

#[test]
fn unknown_http_paths_get_a_404_and_keep_alive_continues() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream.write_all(b"GET /nope HTTP/1.1\r\nHost: torture\r\n\r\n").expect("request");
    let (status, _, _) = read_http_response(&mut stream);
    assert!(status.starts_with("HTTP/1.1 404"), "{status}");
    // The connection survives the 404 and still serves real paths.
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: torture\r\n\r\n").expect("request");
    let (status, _, body) = read_http_response(&mut stream);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(body.contains("qarith_service_queries"));
}

#[test]
fn the_server_refuses_frames_beyond_the_configured_cap() {
    let service = test_service();
    let config = NetConfig { max_frame_bytes: 64, ..test_config() };
    let server = NetServer::start(service, config).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    stream.write_all(&65u32.to_be_bytes()).expect("header");
    expect_error(&read_raw_reply(&mut stream), ErrorKind::Frame);
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).expect("EOF"), 0, "frame errors close");
}
