//! Write-frame torture: `qarith-write/1` payloads against a live
//! server, in the adversarial style of `torture.rs`.
//!
//! The invariants (ISSUE-10):
//!
//! * a malformed write payload gets a *survivable* structured proto
//!   error — the connection keeps serving;
//! * an oversized frame still closes the connection (framing is below
//!   payload dispatch, so writes get no special leniency);
//! * a write followed by a query **on the same connection** observes
//!   the acked epoch: the reply names the ack's `(epoch, db digest)`
//!   and the answers include the freshly inserted tuple, bit-identical
//!   to an in-process query against the same service.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qarith_core::afpras::{AfprasOptions, SampleCount};
use qarith_core::{BatchOptions, MeasureOptions, MethodChoice};
use qarith_datagen::WorkloadScale;
use qarith_net::frame::{self, HEADER_LEN};
use qarith_net::{Decoded, ErrorKind, NetClient, NetConfig, NetServer, Request};
use qarith_serve::{QueryService, ServeConfig};

/// Candidates are the null-`q` Orders tuples only (`q` is drawn from
/// 1..=50), so a write that inserts a large concrete `q` adds exactly
/// one certain answer.
const SQL: &str = "SELECT O.id FROM Orders O WHERE O.q >= 1000";

fn test_options(epsilon: f64, seed: u64) -> MeasureOptions {
    MeasureOptions {
        method: MethodChoice::Afpras,
        afpras: AfprasOptions {
            epsilon,
            samples: SampleCount::Paper,
            seed: seed ^ 0xF1616,
            ..AfprasOptions::default()
        },
        batch: BatchOptions { threads: 1, dedup: true },
        ..MeasureOptions::default()
    }
}

fn test_service() -> Arc<QueryService> {
    let db = qarith_datagen::sales::sales_database(&WorkloadScale::Tiny.params(), 2020);
    let config = ServeConfig { options: test_options(0.1, 77), ..ServeConfig::default() };
    Arc::new(QueryService::new(db, config))
}

fn test_config() -> NetConfig {
    NetConfig {
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        idle_timeout: Duration::from_secs(30),
        tick: Duration::from_millis(2),
        ..NetConfig::default()
    }
}

fn start_server() -> NetServer {
    NetServer::start(test_service(), test_config()).expect("bind loopback")
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn send_frame(stream: &mut TcpStream, payload: &[u8]) {
    stream.write_all(&(payload.len() as u32).to_be_bytes()).expect("frame header");
    stream.write_all(payload).expect("frame payload");
}

fn read_raw_reply(stream: &mut TcpStream) -> Vec<u8> {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header).expect("reply header");
    let mut payload = vec![0u8; u32::from_be_bytes(header) as usize];
    stream.read_exact(&mut payload).expect("reply payload");
    payload
}

fn expect_error(payload: &[u8], want: ErrorKind) {
    match frame::decode_reply(payload).expect("structured reply") {
        Decoded::Error { kind, .. } => assert_eq!(kind, want),
        other => panic!("expected {want:?} error, got ok reply {other:?}"),
    }
}

/// The write under test: one fresh Orders tuple with a concrete `q`
/// far above the generator's range (and a fresh-id product key far
/// above its serial ids).
fn insert_batch() -> qarith_types::WriteBatch {
    let mut batch = qarith_types::WriteBatch::new();
    batch.insert(
        "Orders",
        vec![
            qarith_types::Value::int(1 << 20),
            qarith_types::Value::int(7),
            qarith_types::Value::num(2000),
            qarith_types::Value::num(1),
        ],
    );
    batch
}

#[test]
fn malformed_write_payloads_get_survivable_proto_errors() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");

    let malformed: [&[u8]; 4] = [
        // Declared two ops, carried one.
        b"qarith-write/1 ops=2\nins Orders\tz:1\ts:x\tq:1/2\tq:1/2\n",
        // Unknown opcode.
        b"qarith-write/1 ops=1\nzap Orders\tz:1\n",
        // Unknown value sort tag.
        b"qarith-write/1 ops=1\nins Orders\tw:1\n",
        // Header with no ops count.
        b"qarith-write/1\n",
    ];
    for (i, payload) in malformed.iter().enumerate() {
        send_frame(&mut stream, payload);
        expect_error(&read_raw_reply(&mut stream), ErrorKind::Proto);
        assert!(
            server.stats().protocol_errors > i as u64,
            "each malformed payload counts: {:?}",
            server.stats()
        );
    }

    // Well-typed-but-impossible writes (unknown relation) are write
    // errors, equally survivable.
    send_frame(&mut stream, b"qarith-write/1 ops=1\nins Nowhere\tz:1\n");
    expect_error(&read_raw_reply(&mut stream), ErrorKind::Write);

    // The connection survived all of it: a real query round-trips, and
    // nothing was ever committed.
    send_frame(
        &mut stream,
        frame::encode_request(&Request { epsilon: None, sql: SQL.into() }).as_bytes(),
    );
    match frame::decode_reply(&read_raw_reply(&mut stream)).expect("reply decodes") {
        Decoded::Reply(reply) => {
            assert_eq!(reply.epoch, Some(0), "no malformed write published an epoch");
        }
        other => panic!("expected ok reply after proto errors, got {other:?}"),
    }
    assert_eq!(server.service().stats().writes, 0);
    drop(stream);
    wait_until("connection closed", || server.stats().connections_active == 0);
}

#[test]
fn oversized_write_frame_closes_the_connection() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    // A length prefix beyond the frame cap: rejected before a byte of
    // the (alleged) write payload is read, and the connection closes.
    stream.write_all(&(64u32 << 20).to_be_bytes()).expect("oversized header");
    expect_error(&read_raw_reply(&mut stream), ErrorKind::Frame);
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).expect("EOF after frame error"), 0);
    wait_until("connection closed", || server.stats().connections_active == 0);
    assert_eq!(server.service().stats().writes, 0);
}

#[test]
fn write_then_query_on_one_connection_observes_the_new_epoch() {
    let server = start_server();
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    // Baseline: epoch 0, only the uncertain null-`q` candidates.
    let baseline = match client.query(SQL).expect("baseline query") {
        Decoded::Reply(reply) => reply,
        other => panic!("expected reply, got {other:?}"),
    };
    assert_eq!(baseline.epoch, Some(0));
    assert!(
        baseline.answers.iter().all(|a| a.nu_bits != 1.0f64.to_bits()),
        "no certain answers before the write"
    );

    // The write, acked with the new epoch's identity.
    let ack = match client.write(&insert_batch()).expect("write round trip") {
        Decoded::Write(ack) => ack,
        other => panic!("expected write ack, got {other:?}"),
    };
    assert_eq!(ack.epoch, 1);
    assert_eq!((ack.applied, ack.noops), (1, 0));

    // Same connection, next frame: the reply names the acked epoch and
    // digest, and the inserted tuple shows up as a certain answer.
    let after = match client.query(SQL).expect("post-write query") {
        Decoded::Reply(reply) => reply,
        other => panic!("expected reply, got {other:?}"),
    };
    assert_eq!(after.epoch, Some(ack.epoch), "reply pins the acked epoch");
    assert_eq!(after.db_digest, Some(ack.db_digest), "reply pins the acked digest");
    assert_eq!(after.answers.len(), baseline.answers.len() + 1);
    let inserted = after
        .answers
        .iter()
        .find(|a| a.tuple.contains(&(1 << 20).to_string()))
        .expect("inserted tuple is an answer");
    assert_eq!(inserted.nu_bits, 1.0f64.to_bits(), "concrete q=2000 is certain");

    // And the wire view is bit-identical to an in-process query
    // against the same service.
    let reference = server.service().query(SQL).expect("in-process reference");
    assert_eq!(reference.epoch, ack.epoch);
    assert_eq!(reference.db_digest, ack.db_digest);
    assert_eq!(after.answers.len(), reference.answers.len());
    for (got, want) in after.answers.iter().zip(&reference.answers) {
        assert_eq!(got.nu_bits, want.certainty.value.to_bits(), "ν must be bit-identical");
        assert_eq!(got.tuple, want.tuple.to_string());
    }

    drop(client);
    wait_until("connection closed", || server.stats().connections_active == 0);
    let stats = server.service().stats();
    assert_eq!((stats.writes, stats.write_ops, stats.epoch), (1, 1, 1));
}
