//! Concurrency bit-identity through real sockets: N wire clients × M
//! passes over the whole workload population, every reply compared
//! against a sequential in-process reference — the serving layer's
//! determinism contract must survive the network byte-for-byte.
//!
//! Also exercises the `GET /metrics` endpoint while query traffic is
//! in flight (the exposition is served on the same port by the same
//! accept loop).

use std::sync::Arc;
use std::time::{Duration, Instant};

use qarith_core::afpras::{AfprasOptions, SampleCount};
use qarith_core::{BatchOptions, MeasureOptions, MethodChoice};
use qarith_datagen::{QueryFamily, WorkloadScale};
use qarith_net::{scrape_metrics, Decoded, NetClient, NetConfig, NetServer};
use qarith_serve::{QueryService, ServeConfig};

const CLIENTS: usize = 4;
const PASSES: usize = 3;

/// 64-bit FNV-1a over the μ-relevant reply bits — the same digest
/// construction `serve_bench` gates (qarith_numeric::Fnv1a64), inlined
/// here so the test states its expectation independently.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// One reply reduced to its identity bits.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Identity {
    fingerprint: String,
    answers: Vec<(String, u64, u64, u64)>,
}

impl Identity {
    fn digest_into(&self, fnv: &mut Fnv) {
        fnv.update(self.fingerprint.as_bytes());
        for (tuple, bits, samples, dim) in &self.answers {
            fnv.update(tuple.as_bytes());
            fnv.update(&bits.to_be_bytes());
            fnv.update(&samples.to_be_bytes());
            fnv.update(&dim.to_be_bytes());
        }
    }
}

fn of_wire(reply: &Decoded) -> Identity {
    let Decoded::Reply(reply) = reply else { panic!("expected ok reply, got {reply:?}") };
    Identity {
        fingerprint: reply.fingerprint.clone(),
        answers: reply
            .answers
            .iter()
            .map(|a| (a.tuple.clone(), a.nu_bits, a.samples, a.dimension))
            .collect(),
    }
}

fn of_response(response: &qarith_serve::QueryResponse) -> Identity {
    Identity {
        fingerprint: response.fingerprint.clone(),
        answers: response
            .answers
            .iter()
            .map(|a| {
                (
                    a.tuple.to_string(),
                    a.certainty.value.to_bits(),
                    a.certainty.samples as u64,
                    a.certainty.dimension as u64,
                )
            })
            .collect(),
    }
}

fn start_server() -> NetServer {
    let db = qarith_datagen::sales::sales_database(&WorkloadScale::Tiny.params(), 2020);
    let options = MeasureOptions {
        method: MethodChoice::Afpras,
        afpras: AfprasOptions {
            epsilon: 0.1,
            samples: SampleCount::Paper,
            seed: 2020 ^ 0xF1616,
            ..AfprasOptions::default()
        },
        batch: BatchOptions { threads: 1, dedup: true },
        ..MeasureOptions::default()
    };
    let service =
        Arc::new(QueryService::new(db, ServeConfig { options, ..ServeConfig::default() }));
    let config = NetConfig { tick: Duration::from_millis(2), ..NetConfig::default() };
    NetServer::start(service, config).expect("bind loopback")
}

#[test]
fn concurrent_wire_clients_match_the_sequential_reference_digest() {
    let server = start_server();
    let addr = server.local_addr();
    let sql: Vec<String> =
        QueryFamily::all().iter().flat_map(QueryFamily::queries).map(|q| q.sql).collect();

    // Sequential in-process reference, and its digest over one pass.
    let reference: Vec<Identity> =
        sql.iter().map(|q| of_response(&server.service().query(q).expect("reference"))).collect();
    let mut reference_digest = Fnv::new();
    for identity in &reference {
        identity.digest_into(&mut reference_digest);
    }

    // N wire clients × M passes, each client starting at its own
    // rotation of the template order so plan/ν-cache states differ
    // across interleavings — the answers must not.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|client_id| {
            let sql = sql.clone();
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let n = sql.len();
                let mut per_pass_digests = Vec::new();
                for _pass in 0..PASSES {
                    // Rotated order; digest accumulated in canonical
                    // (unrotated) template order for comparability.
                    let mut pass: Vec<Option<Identity>> = vec![None; n];
                    for step in 0..n {
                        let idx = (client_id + step) % n;
                        let wire = of_wire(&client.query(&sql[idx]).expect("wire query"));
                        assert_eq!(wire, reference[idx], "client {client_id} template {idx}");
                        pass[idx] = Some(wire);
                    }
                    let mut digest = Fnv::new();
                    for identity in pass.iter().flatten() {
                        identity.digest_into(&mut digest);
                    }
                    per_pass_digests.push(digest.0);
                }
                per_pass_digests
            })
        })
        .collect();

    for worker in workers {
        for digest in worker.join().expect("client thread") {
            assert_eq!(
                digest, reference_digest.0,
                "every client, every pass: the sequential reference digest"
            );
        }
    }

    // Accounting closes: every request produced exactly one reply.
    let expected = (CLIENTS * PASSES * sql.len()) as u64;
    let stats = server.stats();
    assert_eq!(stats.frames_in, expected);
    assert_eq!(stats.frames_out, expected);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.timeouts, 0);
}

#[test]
fn metrics_scrape_works_alongside_query_traffic() {
    let server = start_server();
    let addr = server.local_addr();

    // Keep queries flowing while scraping.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let traffic = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut client = NetClient::connect(addr).expect("connect");
            let mut served = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                client.query("SELECT P.id FROM Products P").expect("query");
                served += 1;
            }
            served
        })
    };

    let deadline = Instant::now() + Duration::from_secs(10);
    let mut scrapes = 0usize;
    while scrapes < 5 && Instant::now() < deadline {
        let body = scrape_metrics(addr).expect("scrape");
        for needle in [
            "# TYPE qarith_net_connections_active gauge",
            "# TYPE qarith_net_frames_in counter",
            "qarith_service_queries ",
            "qarith_admission_in_flight ",
            "qarith_sharded_cache_hits ",
            "qarith_batch_candidates ",
            "qarith_rewrite_groups ",
            "qarith_nucache_hits 0",
        ] {
            assert!(body.contains(needle), "scrape missing `{needle}`:\n{body}");
        }
        scrapes += 1;
    }
    assert_eq!(scrapes, 5, "five clean scrapes under load");
    stop.store(true, std::sync::atomic::Ordering::Release);
    let served = traffic.join().expect("traffic thread");
    assert!(served > 0);

    // Unknown paths 404 without disturbing anything.
    assert!(scrape_metrics(addr).is_ok());
    let err = {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream.write_all(b"GET /nope HTTP/1.0\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    };
    assert!(err.starts_with("HTTP/1.0 404"), "{err}");
}
