//! A blocking wire client: the reference implementation of the frame
//! grammar's client half, used by the test suites and `serve_bench
//! --wire` (and available to library users who want a programmatic
//! client instead of netcat).
//!
//! Deliberately plain: one ordinary blocking `TcpStream` with generous
//! socket timeouts, no ticking, no shared state. The *server* is the
//! artifact under adversarial scrutiny; the client's job is to be an
//! obviously-correct counterpart (adversarial clients in the torture
//! suite drive raw sockets directly).

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use qarith_types::WriteBatch;

use crate::frame::{self, Decoded, Request, HEADER_LEN};

/// Default socket read/write timeout of a client connection.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// One client connection to a [`NetServer`](crate::NetServer).
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects with the default 30 s socket timeouts.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
        stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
        stream.set_nodelay(true)?;
        Ok(NetClient { stream })
    }

    /// Sends one request frame without waiting for the reply (the
    /// pipelining primitive; follow with [`NetClient::receive`] per
    /// send, in order).
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        let payload = frame::encode_request(request);
        let bytes = payload.as_bytes();
        let len = u32::try_from(bytes.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "request exceeds u32 bytes")
        })?;
        self.stream.write_all(&len.to_be_bytes())?;
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Reads and decodes one reply frame. A server-side grammar break
    /// surfaces as `InvalidData`; a clean pre-frame EOF as
    /// `UnexpectedEof`.
    pub fn receive(&mut self) -> io::Result<Decoded> {
        let mut header = [0u8; HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let len = u32::from_be_bytes(header) as usize;
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload)?;
        frame::decode_reply(&payload).map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }

    /// One full round trip.
    pub fn roundtrip(&mut self, request: &Request) -> io::Result<Decoded> {
        self.send(request)?;
        self.receive()
    }

    /// Round-trips a bare SQL query (no options).
    pub fn query(&mut self, sql: &str) -> io::Result<Decoded> {
        self.roundtrip(&Request { epsilon: None, sql: sql.to_string() })
    }

    /// Round-trips one write batch. An unencodable batch (a string
    /// value containing a field separator) is `InvalidInput`; the
    /// reply is [`Decoded::Write`] on success or [`Decoded::Error`]
    /// with the server's verdict.
    pub fn write(&mut self, batch: &WriteBatch) -> io::Result<Decoded> {
        let payload = frame::encode_write(batch)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidInput, msg))?;
        let bytes = payload.as_bytes();
        let len = u32::try_from(bytes.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "write batch exceeds u32 bytes")
        })?;
        self.stream.write_all(&len.to_be_bytes())?;
        self.stream.write_all(bytes)?;
        self.receive()
    }
}

/// Scrapes `GET /metrics` from a server and returns the Prometheus
/// text body (status line and headers stripped).
pub fn scrape_metrics<A: ToSocketAddrs>(addr: A) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: qarith\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no HTTP header terminator"))?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains("200") {
        return Err(io::Error::new(io::ErrorKind::InvalidData, format!("scrape failed: {status}")));
    }
    Ok(body.to_string())
}
