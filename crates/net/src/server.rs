//! The framed TCP server: connection lifecycle, backpressure, and
//! graceful drain over a shared [`QueryService`].
//!
//! # Threading model
//!
//! One nonblocking accept loop (polling at [`NetConfig::tick`]) plus
//! one thread per connection — the same hand-rolled std-only shape as
//! the rest of the workspace (no async runtime; the paper's workloads
//! are compute-bound, so a thread per connection is the honest model).
//! Every blocking socket operation is sliced into tick-length waits so
//! a connection can observe drain/force flags and its own deadlines
//! between slices; no thread ever blocks unboundedly.
//!
//! # Backpressure
//!
//! Admission control stays where it already lives: the service's
//! [`AdmissionGate`] caps concurrently *executing* queries and queues
//! the rest (queue, don't shed). The wire layer adds nothing on top —
//! crucially, the gate's permit is scoped inside
//! [`QueryService::query`], so it is released **before** the response
//! is written. A slow reader therefore stalls only its own connection
//! thread (bounded by [`NetConfig::write_timeout`]), never an
//! admission slot; the lifecycle tests pin this by watching the
//! `in_flight` gauge while a reply is wedged against a full socket
//! buffer.
//!
//! # Timeouts and the idle reaper
//!
//! Three clocks per connection, all enforced by the connection's own
//! thread at tick granularity (the reaper is distributed — each
//! connection reaps itself, so there is no central scan to fall
//! behind): [`NetConfig::idle_timeout`] between requests (waiting for
//! the first header byte), [`NetConfig::read_timeout`] within a frame
//! (header started or payload pending), and
//! [`NetConfig::write_timeout`] across one reply write. Expiry counts
//! in [`NetStats::timeouts`] and closes the connection.
//!
//! # Drain and shutdown
//!
//! [`NetServer::shutdown`] runs the drain protocol:
//!
//! 1. set `draining`; the accept loop exits within a tick and drops
//!    the listener, so the OS refuses new connections;
//! 2. connections idle between requests answer `err kind=shutdown`
//!    and close; a connection mid-request finishes that request and
//!    its reply first (pipelined frames behind it are abandoned — the
//!    client sees EOF and re-issues elsewhere);
//! 3. wait (on the connection registry's condvar) until the active
//!    count reaches zero or the caller's deadline expires;
//! 4. past the deadline, set `force` — every tick-sliced wait aborts
//!    at its next slice — and wait a short bounded grace for the
//!    stragglers.
//!
//! The registry mutex (`conns`) plus its `drained` condvar form the
//! `NetConnRegistry` class of analyze.toml's lock hierarchy, outermost
//! by declaration: it is only ever held for counter updates and the
//! shutdown wait, never across a service call (the `lock-reentry` lint
//! keeps it that way).
//!
//! [`AdmissionGate`]: qarith_serve::AdmissionGate

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use qarith_serve::QueryService;

use crate::frame;
use crate::metrics;

/// Configuration of a [`NetServer`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Bind address; port 0 asks the OS for a free port (read the
    /// outcome from [`NetServer::local_addr`]).
    pub addr: String,
    /// Per-frame read budget: once a request's first header byte has
    /// arrived, the rest of the frame must arrive within this window.
    pub read_timeout: Duration,
    /// Per-reply write budget: a reply (or metrics response) must be
    /// fully accepted by the peer's socket within this window. This is
    /// the only resource a slow reader can hold — never an admission
    /// permit (see the module docs).
    pub write_timeout: Duration,
    /// Idle budget *between* requests: a connection that sends nothing
    /// for this long is reaped ([`NetStats::timeouts`] counts it).
    pub idle_timeout: Duration,
    /// Frame-length cap; a length prefix of 0 or above this is a
    /// framing error and closes the connection.
    pub max_frame_bytes: usize,
    /// Poll granularity of every blocking wait (accept, read, write,
    /// drain): smaller reacts faster to drain/force at more wakeups.
    pub tick: Duration,
}

impl Default for NetConfig {
    /// Loopback on an OS-assigned port; 5 s read/write budgets, 60 s
    /// idle budget, 1 MiB frames, 25 ms ticks.
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            max_frame_bytes: 1 << 20,
            tick: Duration::from_millis(25),
        }
    }
}

/// Wire-layer counters, exported through the workspace's `as_pairs`
/// convention (and from there to `/metrics` and the wire BENCH
/// artifact). Names are part of the export schema: renaming one is a
/// baseline-breaking change.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted since start.
    pub connections_opened: u64,
    /// Connections currently open (gauge; returns to 0 after drain —
    /// the torture suite's invariant).
    pub connections_active: u64,
    /// Connections fully closed since start.
    pub connections_closed: u64,
    /// Well-framed request frames received.
    pub frames_in: u64,
    /// Reply frames written (counted at write start, so any reply a
    /// client has received is already included — see `write_frame`).
    pub frames_out: u64,
    /// Framing and protocol violations answered with `err
    /// kind=frame|proto` (malformed requests, oversized lengths,
    /// mid-frame disconnects, ε mismatches).
    pub protocol_errors: u64,
    /// Read, write, and idle deadlines that expired and closed a
    /// connection.
    pub timeouts: u64,
}

impl NetStats {
    /// The counters as stable `(name, value)` pairs, in declaration
    /// order.
    pub fn as_pairs(&self) -> [(&'static str, u64); 7] {
        [
            ("connections_opened", self.connections_opened),
            ("connections_active", self.connections_active),
            ("connections_closed", self.connections_closed),
            ("frames_in", self.frames_in),
            ("frames_out", self.frames_out),
            ("protocol_errors", self.protocol_errors),
            ("timeouts", self.timeouts),
        ]
    }
}

/// How a drain ended (returned by [`NetServer::shutdown`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainOutcome {
    /// Every connection closed (possibly only after `force`).
    pub drained: bool,
    /// The caller's deadline expired and stragglers were force-closed.
    pub forced: bool,
    /// Connections still open when shutdown gave up (0 unless a
    /// handler is wedged in a kernel call longer than the grace).
    pub stranded: usize,
}

/// State shared by the accept loop, every connection thread, and the
/// server handle.
#[derive(Debug)]
struct Shared {
    service: Arc<QueryService>,
    config: NetConfig,
    opened: AtomicU64,
    closed: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    protocol_errors: AtomicU64,
    timeouts: AtomicU64,
    /// Count of open connections — the `NetConnRegistry` lock class
    /// (outermost in analyze.toml's hierarchy). Held only for counter
    /// updates and the shutdown wait; never across a service call.
    conns: Mutex<usize>,
    /// Signalled on every connection close; shutdown waits on it.
    drained: Condvar,
    /// Stop accepting; finish in-flight requests; close when idle.
    draining: AtomicBool,
    /// Abandon tick-sliced waits at the next slice (set after the
    /// drain deadline).
    force: AtomicBool,
}

impl Shared {
    fn active(&self) -> usize {
        *self.conns.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn stats(&self) -> NetStats {
        NetStats {
            connections_opened: self.opened.load(Ordering::Relaxed),
            connections_active: self.active() as u64,
            connections_closed: self.closed.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }
}

/// Registration of one live connection. Construction counts the
/// connection in; `Drop` counts it out and wakes the drain waiter, so
/// the active count is correct on every exit path (including unwinds,
/// which the request path is linted against but defense stays cheap).
struct ConnTicket {
    shared: Arc<Shared>,
}

impl ConnTicket {
    fn new(shared: Arc<Shared>) -> ConnTicket {
        shared.opened.fetch_add(1, Ordering::Relaxed);
        {
            let mut conns = shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
            *conns += 1;
        }
        ConnTicket { shared }
    }
}

impl Drop for ConnTicket {
    fn drop(&mut self) {
        self.shared.closed.fetch_add(1, Ordering::Relaxed);
        {
            let mut conns = self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
            *conns = conns.saturating_sub(1);
        }
        self.shared.drained.notify_all();
    }
}

/// The listening server: a handle over the accept loop and every
/// connection thread it spawned. Dropping the handle runs
/// [`NetServer::shutdown`] with a 5 s deadline.
#[derive(Debug)]
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Mutex<Option<thread::JoinHandle<()>>>,
}

impl NetServer {
    /// Binds and starts serving. Returns once the listener is live;
    /// connections are handled on background threads.
    pub fn start(service: Arc<QueryService>, config: NetConfig) -> io::Result<NetServer> {
        let mut config = config;
        // A zero tick would make `set_read_timeout(Some(0))` an error
        // and the poll loops spin; floor it.
        config.tick = config.tick.max(Duration::from_millis(1));
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            config,
            opened: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            conns: Mutex::new(0),
            drained: Condvar::new(),
            draining: AtomicBool::new(false),
            force: AtomicBool::new(false),
        });
        let accept_shared = shared.clone();
        let accept = thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(NetServer { shared, local_addr, accept: Mutex::new(Some(accept)) })
    }

    /// The bound address (the resolved port when the config asked for
    /// port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Wire-layer counters.
    pub fn stats(&self) -> NetStats {
        self.shared.stats()
    }

    /// The served [`QueryService`].
    pub fn service(&self) -> &Arc<QueryService> {
        &self.shared.service
    }

    /// Runs the drain protocol (see the module docs): stop accepting,
    /// finish in-flight requests, wait for every connection to close
    /// until `deadline` from now, then force-close stragglers within a
    /// short bounded grace. Idempotent — later calls just re-wait.
    pub fn shutdown(&self, deadline: Duration) -> DrainOutcome {
        self.shared.draining.store(true, Ordering::Release);
        // The accept loop observes `draining` within a tick and exits,
        // dropping the listener (the OS then refuses new connections).
        let handle = {
            let mut accept = self.accept.lock().unwrap_or_else(PoisonError::into_inner);
            accept.take()
        };
        if let Some(handle) = handle {
            // A panicking accept loop already stopped accepting, which
            // is all drain needs from it.
            let _ = handle.join();
        }
        let limit = Instant::now() + deadline;
        if self.wait_drained(limit) {
            return DrainOutcome { drained: true, forced: false, stranded: 0 };
        }
        // Deadline expired: force every tick-sliced wait to abort, then
        // allow a short grace for handlers to observe the flag.
        self.shared.force.store(true, Ordering::Release);
        let grace = Instant::now() + self.shared.config.tick.saturating_mul(40);
        let drained = self.wait_drained(grace);
        DrainOutcome { drained, forced: true, stranded: self.shared.active() }
    }

    /// Waits on the registry condvar until the active count is zero or
    /// `limit` passes; `true` iff fully drained.
    fn wait_drained(&self, limit: Instant) -> bool {
        let mut conns = self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
        while *conns > 0 {
            let now = Instant::now();
            if now >= limit {
                return false;
            }
            let (guard, _timed_out) = self
                .shared
                .drained
                .wait_timeout(conns, limit - now)
                .unwrap_or_else(PoisonError::into_inner);
            conns = guard;
        }
        true
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown(Duration::from_secs(5));
    }
}

/// Accepts until drain; each connection gets its own thread carrying a
/// [`ConnTicket`].
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.draining.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Register before spawning so a shutdown that starts
                // right after the accept waits for this connection too.
                let ticket = ConnTicket::new(shared.clone());
                let conn_shared = shared.clone();
                thread::spawn(move || {
                    let _ticket = ticket;
                    let mut stream = stream;
                    if configure_stream(&conn_shared, &stream).is_ok() {
                        serve_connection(&conn_shared, &mut stream);
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(shared.config.tick),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Transient accept errors (e.g. the peer vanished between
            // SYN and accept) must not kill the listener.
            Err(_) => thread::sleep(shared.config.tick),
        }
    }
    // The listener drops here; the OS refuses connections from now on.
}

/// Puts an accepted stream into the tick-sliced blocking regime: the
/// stream itself blocks (it may have inherited the listener's
/// nonblocking flag), but never longer than one tick per call.
fn configure_stream(shared: &Shared, stream: &TcpStream) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(shared.config.tick))?;
    stream.set_write_timeout(Some(shared.config.tick))?;
    let _ = stream.set_nodelay(true);
    Ok(())
}

/// How a tick-sliced exact read ended.
enum FillEnd {
    /// The buffer is full.
    Full,
    /// The peer closed; `partial` says whether any bytes of this read
    /// had already arrived (a mid-frame disconnect).
    Eof {
        /// Bytes had arrived before the close.
        partial: bool,
    },
    /// The deadline passed first.
    TimedOut,
    /// Drain (idle connections only) or force interrupted the wait.
    Draining,
    /// A hard I/O error.
    Error,
}

/// Reads exactly `buf.len()` bytes in tick slices, honoring `deadline`
/// and the drain flags. With `idle_interruptible`, the read also
/// aborts as `Draining` while *no* byte has arrived yet and the server
/// is draining — that is the "idle between requests" drain point; once
/// a request has started flowing it is allowed to finish.
fn fill(
    shared: &Shared,
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
    idle_interruptible: bool,
) -> FillEnd {
    let mut filled = 0usize;
    loop {
        if shared.force.load(Ordering::Acquire) {
            return FillEnd::Draining;
        }
        if idle_interruptible && filled == 0 && shared.draining.load(Ordering::Acquire) {
            return FillEnd::Draining;
        }
        let Some(rest) = buf.get_mut(filled..) else { return FillEnd::Full };
        if rest.is_empty() {
            return FillEnd::Full;
        }
        match stream.read(rest) {
            Ok(0) => return FillEnd::Eof { partial: filled > 0 },
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    return FillEnd::TimedOut;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return FillEnd::Error,
        }
    }
}

/// Writes all of `bytes` in tick slices under the configured write
/// budget. `Err(())` means the connection must close (the deadline
/// counter has already been bumped when the cause was a timeout).
fn write_all_ticking(shared: &Shared, stream: &mut TcpStream, bytes: &[u8]) -> Result<(), ()> {
    let deadline = Instant::now() + shared.config.write_timeout;
    let mut sent = 0usize;
    loop {
        if shared.force.load(Ordering::Acquire) {
            return Err(());
        }
        let Some(rest) = bytes.get(sent..) else { return Ok(()) };
        if rest.is_empty() {
            return Ok(());
        }
        match stream.write(rest) {
            Ok(0) => return Err(()),
            Ok(n) => sent += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    shared.timeouts.fetch_add(1, Ordering::Relaxed);
                    return Err(());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
}

/// Frames and writes one reply payload.
///
/// The counter bumps *before* the socket write: a client that has
/// received a reply must observe `frames_out` already incremented
/// (receipt happens-after the write, which happens-after the bump), so
/// "every observed reply is counted" holds for external observers —
/// the accounting assertion the wire-identity test makes after its
/// clients join. The cost is counting a reply whose write then fails;
/// that connection is torn down anyway, and the stat stays monotone.
fn write_frame(shared: &Shared, stream: &mut TcpStream, payload: &str) -> Result<(), ()> {
    let bytes = payload.as_bytes();
    let Ok(len) = u32::try_from(bytes.len()) else { return Err(()) };
    let mut framed = Vec::with_capacity(frame::HEADER_LEN + bytes.len());
    framed.extend_from_slice(&len.to_be_bytes());
    framed.extend_from_slice(bytes);
    shared.frames_out.fetch_add(1, Ordering::Relaxed);
    write_all_ticking(shared, stream, &framed)?;
    Ok(())
}

/// The per-connection request loop (see the module docs for the
/// lifecycle).
fn serve_connection(shared: &Shared, stream: &mut TcpStream) {
    loop {
        // Between requests: the idle clock runs and drain may close us.
        let mut header = [0u8; frame::HEADER_LEN];
        let idle_deadline = Instant::now() + shared.config.idle_timeout;
        match fill(shared, stream, &mut header, idle_deadline, true) {
            FillEnd::Full => {}
            FillEnd::Eof { partial: false } => return,
            FillEnd::Eof { partial: true } => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            FillEnd::TimedOut => {
                // The idle reaper: this connection reaps itself.
                shared.timeouts.fetch_add(1, Ordering::Relaxed);
                return;
            }
            FillEnd::Draining => {
                let bye = frame::encode_error(frame::ErrorKind::Shutdown, "server is draining");
                let _ = write_frame(shared, stream, &bye);
                return;
            }
            FillEnd::Error => return,
        }

        if header == frame::HTTP_GET {
            serve_http(shared, stream, &header);
            return;
        }

        let len = u32::from_be_bytes(header) as usize;
        if len == 0 || len > shared.config.max_frame_bytes {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let msg = format!(
                "frame length {len} outside 1..={} — framing cannot be trusted, closing",
                shared.config.max_frame_bytes
            );
            let bye = frame::encode_error(frame::ErrorKind::Frame, &msg);
            let _ = write_frame(shared, stream, &bye);
            return;
        }

        let mut payload = vec![0u8; len];
        let read_deadline = Instant::now() + shared.config.read_timeout;
        match fill(shared, stream, &mut payload, read_deadline, false) {
            FillEnd::Full => {}
            FillEnd::Eof { .. } => {
                // Mid-frame disconnect: the request never completed.
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            FillEnd::TimedOut => {
                shared.timeouts.fetch_add(1, Ordering::Relaxed);
                return;
            }
            FillEnd::Draining => {
                let bye = frame::encode_error(frame::ErrorKind::Shutdown, "server is draining");
                let _ = write_frame(shared, stream, &bye);
                return;
            }
            FillEnd::Error => return,
        }
        shared.frames_in.fetch_add(1, Ordering::Relaxed);

        // One trace per frame: decode and encode time lands in the
        // same per-request record as the service stages, and the
        // minted request id rides back on the reply (`rid=`). The
        // trace closes before the reply write — socket time is the
        // peer's speed, not this request's cost (see the module docs
        // on backpressure).
        let mut trace = shared.service.begin_trace();
        let (reply, fingerprint) = respond(shared, &payload, &mut trace);
        shared.service.finish_trace(&trace, &fingerprint, "wire");
        if write_frame(shared, stream, &reply).is_err() {
            return;
        }
        if shared.draining.load(Ordering::Acquire) {
            // In-flight request finished; drain closes us here.
            return;
        }
    }
}

/// Executes one well-framed request payload and renders the reply,
/// recording frame decode/encode and every service stage into `trace`.
/// Always returns `(payload, fingerprint)` — every failure mode maps
/// to the `err` taxonomy (with an empty fingerprint), and only
/// framing-level failures (handled by the caller) close the
/// connection.
fn respond(
    shared: &Shared,
    payload: &[u8],
    trace: &mut qarith_trace::RequestTrace,
) -> (String, String) {
    // Writes are dispatched by payload magic, before query decoding:
    // the two grammars share the frame layer and the error taxonomy
    // but nothing else. Writes skip the ε check (they carry no ε) and
    // the admission gate (they serialize on the service's epoch-writer
    // lock; a full gate must not starve the write path).
    if payload.starts_with(frame::WRITE_MAGIC.as_bytes()) {
        let decoded = {
            let _span = trace.span(qarith_trace::Stage::FrameDecode);
            frame::decode_write(payload)
        };
        let batch = match decoded {
            Ok(batch) => batch,
            Err(msg) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return (frame::encode_error(frame::ErrorKind::Proto, &msg), String::new());
            }
        };
        return match shared.service.apply_with_trace(&batch, trace) {
            Ok(outcome) => {
                let rid = trace.id();
                let _span = trace.span(qarith_trace::Stage::FrameEncode);
                (frame::encode_write_ack(&outcome, rid), String::new())
            }
            Err(e) => {
                let kind = frame::ErrorKind::of_serve_kind(e.kind());
                (frame::encode_error(kind, &e.to_string()), String::new())
            }
        };
    }
    let decoded = {
        let _span = trace.span(qarith_trace::Stage::FrameDecode);
        frame::decode_request(payload)
    };
    let request = match decoded {
        Ok(request) => request,
        Err(msg) => {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return (frame::encode_error(frame::ErrorKind::Proto, &msg), String::new());
        }
    };
    if let Some(eps) = request.epsilon {
        // The served ε is fixed per service (it keys the ν-cache), so a
        // mismatch is answered honestly instead of served imprecisely.
        let served = shared.service.options().afpras.epsilon;
        if eps.to_bits() != served.to_bits() {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let msg = format!(
                "this service serves epsilon={served}; re-issue with that value or omit epsilon="
            );
            return (frame::encode_error(frame::ErrorKind::Proto, &msg), String::new());
        }
    }
    match shared.service.query_with_trace(&request.sql, trace) {
        Ok(response) => {
            let _span = trace.span(qarith_trace::Stage::FrameEncode);
            let fingerprint = response.fingerprint.clone();
            (frame::encode_reply(&response), fingerprint)
        }
        Err(e) => {
            let kind = frame::ErrorKind::of_serve_kind(e.kind());
            (frame::encode_error(kind, &e.to_string()), String::new())
        }
    }
}

/// The HTTP carve-out: a connection whose first four bytes were
/// `GET ` stays in HTTP mode for its lifetime, serving `/metrics`
/// (Prometheus text) and `/slow` (the slow-query log as JSON) with
/// **HTTP/1.1 keep-alive**: responses carry `Content-Length`, and the
/// loop reads the next request off the same socket, so a Prometheus
/// scraper pays connection setup once, not per scrape. A connection
/// closes after the response when the client is HTTP/1.0 (without
/// `Connection: keep-alive`), asked for `Connection: close`, or the
/// server is draining; between requests the idle clock runs, exactly
/// as on framed connections.
fn serve_http(shared: &Shared, stream: &mut TcpStream, first: &[u8; frame::HEADER_LEN]) {
    let mut carry: Vec<u8> = first.to_vec();
    loop {
        let Some((request, leftover)) =
            read_http_request(shared, stream, std::mem::take(&mut carry))
        else {
            return;
        };
        carry = leftover;
        let text = String::from_utf8_lossy(&request);
        let mut lines = text.lines();
        let mut words = lines.next().unwrap_or("").split_ascii_whitespace();
        let _method = words.next();
        let path = words.next().unwrap_or("");
        // Echo the client's HTTP minor version; anything unrecognized
        // is answered (and closed) as HTTP/1.0.
        let version = if words.next() == Some("HTTP/1.1") { "HTTP/1.1" } else { "HTTP/1.0" };
        let connection_header = lines
            .filter_map(|l| l.split_once(':'))
            .find(|(name, _)| name.trim().eq_ignore_ascii_case("connection"))
            .map(|(_, value)| value.trim().to_ascii_lowercase());
        let keep = !shared.draining.load(Ordering::Acquire)
            && match connection_header.as_deref() {
                Some("close") => false,
                Some("keep-alive") => true,
                _ => version == "HTTP/1.1",
            };
        let (status, content_type, body) = route_http(shared, path);
        let response = http_response(version, status, content_type, &body, keep);
        if write_all_ticking(shared, stream, response.as_bytes()).is_err() || !keep {
            return;
        }
    }
}

/// Resolves one HTTP path to `(status, content type, body)`.
fn route_http(shared: &Shared, path: &str) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => {
            let body = metrics::render(&shared.service, &shared.stats());
            ("200 OK", "text/plain; version=0.0.4", body)
        }
        "/slow" => {
            let mut body = shared.service.slow_queries_json();
            body.push('\n');
            ("200 OK", "application/json", body)
        }
        _ => {
            let body = "only /metrics and /slow live here\n".to_string();
            ("404 Not Found", "text/plain; version=0.0.4", body)
        }
    }
}

/// Reads one HTTP request (through the blank line ending its header
/// block), starting from `carry` (bytes already read past the previous
/// request). Returns the request bytes plus any leftover belonging to
/// the next pipelined request, or `None` when the connection must
/// close (clean EOF, timeout, drain, protocol violation — counters
/// bumped here as appropriate).
fn read_http_request(
    shared: &Shared,
    stream: &mut TcpStream,
    carry: Vec<u8>,
) -> Option<(Vec<u8>, Vec<u8>)> {
    const MAX_HTTP_REQUEST: usize = 8 << 10;
    // Waiting for the next request is idle time (like the framed
    // loop's wait for a header); the drain points below mirror it.
    let deadline = Instant::now() + shared.config.idle_timeout;
    let mut request = carry;
    loop {
        if let Some(end) = http_header_end(&request) {
            let leftover = request.split_off(end);
            return Some((request, leftover));
        }
        if request.len() >= MAX_HTTP_REQUEST {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if shared.force.load(Ordering::Acquire) {
            return None;
        }
        if request.is_empty() && shared.draining.load(Ordering::Acquire) {
            // Idle between requests while draining: close, as framed
            // connections do.
            return None;
        }
        let mut chunk = [0u8; 256];
        match stream.read(&mut chunk) {
            Ok(0) => {
                if !request.is_empty() {
                    // EOF mid-request: never complete, never answerable.
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                }
                return None;
            }
            Ok(n) => {
                let read = chunk.get(..n)?;
                request.extend_from_slice(read);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    shared.timeouts.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}

/// The index just past the blank line ending an HTTP header block, if
/// one is present (`\r\n\r\n` per spec, bare `\n\n` tolerated).
fn http_header_end(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Renders a minimal HTTP response with explicit `Content-Length`
/// (the framing keep-alive relies on) and `Connection` semantics.
fn http_response(
    version: &str,
    status: &str,
    content_type: &str,
    body: &str,
    keep: bool,
) -> String {
    let connection = if keep { "keep-alive" } else { "close" };
    format!(
        "{version} {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )
}
