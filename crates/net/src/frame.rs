//! The wire grammar: length-prefixed frames carrying line-oriented
//! UTF-8 request and response payloads.
//!
//! # Framing
//!
//! Every message is one **frame**: a 4-byte big-endian payload length
//! `N` followed by exactly `N` payload bytes. `N = 0` and
//! `N >` [the configured cap](crate::NetConfig::max_frame_bytes) are
//! framing errors: the server answers with a structured `err` frame
//! and closes the connection, because a stream whose framing cannot be
//! trusted cannot be resynchronized. Errors *inside* a well-framed
//! payload (bad UTF-8, a malformed header, rejected SQL) are answered
//! with an `err` frame and the connection stays usable — framing is
//! the recovery boundary.
//!
//! One deliberate carve-out: a connection whose first four bytes are
//! ASCII `GET ` is an HTTP/1.x-subset client (interpreted as a length
//! prefix those bytes would demand a 1.2 GB frame, so the overlap is
//! unambiguous under any sane cap); the server switches to the
//! [`/metrics`](crate::metrics) path for that connection.
//!
//! # Request payload
//!
//! ```text
//! qarith-query/1 [key=value]...\n
//! <SQL text, until end of payload>
//! ```
//!
//! Recognized options: `epsilon=<float>` — the client's expected
//! additive error bound. The serving ε is fixed per service (it is
//! part of the ν-cache fingerprint), so a mismatched `epsilon` is
//! answered with `err kind=proto` naming the served value rather than
//! silently serving different-precision answers. Unknown keys are
//! `proto` errors too: a client asking for an option this server does
//! not implement must hear "no", not get defaults. (The deadline knob
//! of ROADMAP item 5 will land as a new key here.)
//!
//! # Write payload
//!
//! A frame whose payload starts with `qarith-write/1` carries a
//! [`WriteBatch`] instead of a query. Framing and error-recovery rules
//! are identical — a malformed write payload is a survivable `proto`
//! error, a framing violation closes the connection:
//!
//! ```text
//! qarith-write/1 ops=<n>\n
//! ins <relation>\t<value>...\n
//! del <relation>\t<value>...\n
//! upd <relation>\t<old value>...\t=>\t<new value>...\n
//! ```
//!
//! Fields after the opcode are tab-separated (display forms of values
//! contain spaces). Value tokens are sort-tagged: `z:<i64>` and
//! `s:<text>` for base constants, `q:<numer>/<denom>` for exact
//! numerical constants, `B:<id>`/`N:<id>` for base/numerical marked
//! nulls — a write may introduce fresh nulls, which is how an
//! incomplete database stays incomplete as it evolves. The ack is a
//! header-only reply naming the epoch the batch published and what it
//! invalidated:
//!
//! ```text
//! qarith-reply/1 ok kind=write epoch=<n> db=<16 hex> applied=<n> noops=<n> inv_keys=<n> inv_entries=<n> inv_plans=<n> rid=<epoch-hex>-<seq>\n
//! ```
//!
//! # Response payload
//!
//! Success:
//!
//! ```text
//! qarith-reply/1 ok answers=<n> kind=point plan_cached=<0|1> epoch=<n> db=<16 hex> rid=<epoch-hex>-<seq>\n
//! fp <template fingerprint>\n
//! a nu=<decimal> bits=<16 hex> samples=<n> dim=<n> flags=<[c][r] or -> tuple=<display>\n   (× n)
//! stats candidates=<n> groups=<n> measured=<n> dedup_hits=<n> cache_hits=<n>\n
//! ```
//!
//! The fingerprint is normalized SQL text (it contains spaces), so it
//! gets a whole line rather than a `key=value` slot in the header.
//! `rid=` is the server-minted [`qarith_trace::RequestId`] of this
//! request — quote it when reporting a slow query so the operator can
//! find the matching [`/slow`](crate::metrics) record. `epoch=`/`db=`
//! name the database snapshot the answers are pinned to (the mutation
//! torture suite matches `db` against published epoch digests). The
//! decoder tolerates the absence of all three (pre-tracing and
//! pre-write servers never sent them).
//!
//! `bits` is the IEEE-754 bit pattern of ν and is the authoritative
//! value — the torture and bit-identity suites compare it against
//! in-process execution; `nu` is the same number for human eyes.
//! `flags` is provenance (`c` ν-cache/dedup hit, `r` rewritten), never
//! identity. `kind=point` leaves room for the planned
//! `kind=interval lo=… hi=…` form of the Console–Libkin–Peterfreund
//! [certain, possible]-answer semantics (PAPERS.md) without a frame
//! change.
//!
//! Error:
//!
//! ```text
//! qarith-reply/1 err kind=<frame|proto|sql|measure|write|internal|shutdown>\n
//! <human-readable message>
//! ```
//!
//! The taxonomy: `frame` (framing violated; connection closes),
//! `proto` (malformed request payload; connection survives),
//! `sql`/`measure`/`write`/`internal` (the [`ServeError`] classes of
//! [`qarith_serve::ServeError::kind`]; connection survives), and
//! `shutdown` (the server is draining; connection closes).
//!
//! [`ServeError`]: qarith_serve::ServeError

use qarith_numeric::Rational;
use qarith_serve::{QueryResponse, WriteOutcome};
use qarith_types::{Value, WriteBatch, WriteOp};

/// Bytes of the frame length prefix.
pub const HEADER_LEN: usize = 4;

/// Magic leading the request header line.
pub const REQUEST_MAGIC: &str = "qarith-query/1";

/// Magic leading a write-batch payload.
pub const WRITE_MAGIC: &str = "qarith-write/1";

/// Magic leading the response header line.
pub const REPLY_MAGIC: &str = "qarith-reply/1";

/// The four bytes that divert a connection to the HTTP `/metrics`
/// handler when they arrive where a length prefix is expected.
pub const HTTP_GET: [u8; 4] = *b"GET ";

/// Machine-readable error classes of the `err` response (see the
/// module docs for the taxonomy). Stable wire strings: renaming one is
/// a protocol-breaking change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Framing violated (zero or oversized length prefix); the
    /// connection closes after this reply.
    Frame,
    /// Well-framed but malformed payload; the connection survives.
    Proto,
    /// The service rejected the SQL text.
    Sql,
    /// Candidate generation or measurement failed.
    Measure,
    /// A write batch was rejected (unknown relation, arity or sort
    /// mismatch); nothing was applied.
    Write,
    /// A serving-layer fault the client cannot fix.
    Internal,
    /// The server is draining; the connection closes after this reply.
    Shutdown,
}

impl ErrorKind {
    /// The stable wire string.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Frame => "frame",
            ErrorKind::Proto => "proto",
            ErrorKind::Sql => "sql",
            ErrorKind::Measure => "measure",
            ErrorKind::Write => "write",
            ErrorKind::Internal => "internal",
            ErrorKind::Shutdown => "shutdown",
        }
    }

    /// Parses a wire string produced by [`ErrorKind::name`].
    pub fn parse(s: &str) -> Option<ErrorKind> {
        match s {
            "frame" => Some(ErrorKind::Frame),
            "proto" => Some(ErrorKind::Proto),
            "sql" => Some(ErrorKind::Sql),
            "measure" => Some(ErrorKind::Measure),
            "write" => Some(ErrorKind::Write),
            "internal" => Some(ErrorKind::Internal),
            "shutdown" => Some(ErrorKind::Shutdown),
            _ => None,
        }
    }

    /// The [`qarith_serve::ServeError::kind`] classes, mapped onto the
    /// wire taxonomy.
    pub fn of_serve_kind(kind: &str) -> ErrorKind {
        match kind {
            "sql" => ErrorKind::Sql,
            "measure" => ErrorKind::Measure,
            "write" => ErrorKind::Write,
            _ => ErrorKind::Internal,
        }
    }
}

/// A parsed request payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// The client's expected ε, when the header carried `epsilon=`.
    pub epsilon: Option<f64>,
    /// The SQL text (everything after the header line).
    pub sql: String,
}

/// Encodes a request payload (the client half; the server only
/// decodes).
pub fn encode_request(request: &Request) -> String {
    let mut header = REQUEST_MAGIC.to_string();
    if let Some(eps) = request.epsilon {
        header.push_str(&format!(" epsilon={eps}"));
    }
    format!("{header}\n{}", request.sql)
}

/// Decodes a request payload. Every failure is a [`ErrorKind::Proto`]
/// message (the framing was fine; only the payload is malformed).
pub fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    let (header, sql) = match text.split_once('\n') {
        Some(split) => split,
        None => (text, ""),
    };
    let mut words = header.split_ascii_whitespace();
    if words.next() != Some(REQUEST_MAGIC) {
        return Err(format!("request header must start with `{REQUEST_MAGIC}`"));
    }
    let mut epsilon = None;
    for option in words {
        let Some((key, value)) = option.split_once('=') else {
            return Err(format!("malformed option `{option}` (expected key=value)"));
        };
        match key {
            "epsilon" => match value.parse::<f64>() {
                Ok(eps) if eps.is_finite() && eps > 0.0 => epsilon = Some(eps),
                _ => return Err(format!("epsilon `{value}` is not a positive finite number")),
            },
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if sql.trim().is_empty() {
        return Err("empty SQL text".to_string());
    }
    Ok(Request { epsilon, sql: sql.to_string() })
}

/// One sort-tagged value token (see the module docs' write grammar).
/// Fails on strings containing tab or newline — the op-line field
/// separators — rather than inventing an escape syntax.
fn encode_value(value: &Value) -> Result<String, String> {
    Ok(match value {
        Value::Base(qarith_types::BaseValue::Int(i)) => format!("z:{i}"),
        Value::Base(qarith_types::BaseValue::Str(s)) => {
            if s.contains('\t') || s.contains('\n') {
                return Err(format!("string value {s:?} contains a field separator"));
            }
            format!("s:{s}")
        }
        Value::Num(q) => format!("q:{}/{}", q.numer(), q.denom()),
        Value::BaseNull(id) => format!("B:{}", id.0),
        Value::NumNull(id) => format!("N:{}", id.0),
    })
}

fn decode_value(token: &str) -> Result<Value, String> {
    let (tag, rest) =
        token.split_once(':').ok_or_else(|| format!("value token `{token}` without a sort tag"))?;
    match tag {
        "z" => {
            rest.parse::<i64>().map(Value::int).map_err(|_| format!("malformed integer `{rest}`"))
        }
        "s" => Ok(Value::str(rest)),
        "q" => {
            let (num, den) = rest
                .split_once('/')
                .ok_or_else(|| format!("rational `{rest}` must be numer/denom"))?;
            let num = num.parse::<i128>().map_err(|_| format!("malformed numerator `{num}`"))?;
            let den = den.parse::<i128>().map_err(|_| format!("malformed denominator `{den}`"))?;
            Rational::checked_new(num, den)
                .map(Value::Num)
                .map_err(|e| format!("invalid rational `{rest}`: {e}"))
        }
        "B" => rest
            .parse::<u32>()
            .map(|id| Value::BaseNull(qarith_types::BaseNullId(id)))
            .map_err(|_| format!("malformed base-null id `{rest}`")),
        "N" => rest
            .parse::<u32>()
            .map(|id| Value::NumNull(qarith_types::NumNullId(id)))
            .map_err(|_| format!("malformed num-null id `{rest}`")),
        other => Err(format!("unknown sort tag `{other}`")),
    }
}

fn encode_values(values: &[Value]) -> Result<String, String> {
    let tokens: Result<Vec<String>, String> = values.iter().map(encode_value).collect();
    Ok(tokens?.join("\t"))
}

/// Encodes a write-batch payload (the client half). Fails only on
/// values the grammar cannot carry (strings containing tab/newline).
pub fn encode_write(batch: &WriteBatch) -> Result<String, String> {
    let mut out = format!("{WRITE_MAGIC} ops={}\n", batch.ops.len());
    for op in &batch.ops {
        match op {
            WriteOp::Insert { relation, values } => {
                out.push_str(&format!("ins {relation}\t{}\n", encode_values(values)?));
            }
            WriteOp::Delete { relation, values } => {
                out.push_str(&format!("del {relation}\t{}\n", encode_values(values)?));
            }
            WriteOp::Update { relation, old, new } => {
                out.push_str(&format!(
                    "upd {relation}\t{}\t=>\t{}\n",
                    encode_values(old)?,
                    encode_values(new)?,
                ));
            }
        }
    }
    Ok(out)
}

/// Decodes a write-batch payload. Every failure is an
/// [`ErrorKind::Proto`] message, exactly like [`decode_request`] — the
/// framing was fine, only the payload is malformed; type errors
/// against the actual schemas surface later as [`ErrorKind::Write`].
pub fn decode_write(payload: &[u8]) -> Result<WriteBatch, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    let (header, body) = match text.split_once('\n') {
        Some(split) => split,
        None => (text, ""),
    };
    let mut words = header.split_ascii_whitespace();
    if words.next() != Some(WRITE_MAGIC) {
        return Err(format!("write header must start with `{WRITE_MAGIC}`"));
    }
    let mut declared = None;
    for option in words {
        let Some((key, value)) = option.split_once('=') else {
            return Err(format!("malformed option `{option}` (expected key=value)"));
        };
        match key {
            "ops" => {
                declared = Some(
                    value.parse::<usize>().map_err(|_| format!("malformed ops count `{value}`"))?,
                );
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let declared = declared.ok_or("write header without ops=")?;
    let mut batch = WriteBatch::new();
    for line in body.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let (opcode, rest) =
            line.split_once(' ').ok_or_else(|| format!("op line without an opcode: `{line}`"))?;
        let mut fields = rest.split('\t');
        let relation = fields.next().unwrap_or("");
        if relation.is_empty() {
            return Err(format!("op line without a relation: `{line}`"));
        }
        match opcode {
            "ins" | "del" => {
                let values: Result<Vec<Value>, String> = fields.map(decode_value).collect();
                let values = values?;
                if values.is_empty() {
                    return Err(format!("`{opcode}` op without values: `{line}`"));
                }
                if opcode == "ins" {
                    batch.insert(relation, values);
                } else {
                    batch.delete(relation, values);
                }
            }
            "upd" => {
                let mut old = Vec::new();
                let mut new = Vec::new();
                let mut after_arrow = false;
                for field in fields {
                    if field == "=>" {
                        if after_arrow {
                            return Err(format!("`upd` op with two `=>`: `{line}`"));
                        }
                        after_arrow = true;
                    } else if after_arrow {
                        new.push(decode_value(field)?);
                    } else {
                        old.push(decode_value(field)?);
                    }
                }
                if !after_arrow || old.is_empty() || new.is_empty() {
                    return Err(format!("`upd` op must be old\\t=>\\tnew: `{line}`"));
                }
                batch.update(relation, old, new);
            }
            other => return Err(format!("unknown write opcode `{other}`")),
        }
    }
    if batch.ops.len() != declared {
        return Err(format!("write declared {declared} ops but carried {}", batch.ops.len()));
    }
    Ok(batch)
}

/// A decoded write acknowledgement — the wire form of
/// [`WriteOutcome`], plus the server-minted request id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteAck {
    /// The epoch the batch published.
    pub epoch: u64,
    /// Content digest of the published database.
    pub db_digest: u64,
    /// Ops that changed the database.
    pub applied: u64,
    /// Well-typed no-op ops.
    pub noops: u64,
    /// Distinct ν-cache group keys invalidated.
    pub invalidated_keys: u64,
    /// ν-cache entries dropped.
    pub invalidated_entries: u64,
    /// Cached plans dropped.
    pub plans_invalidated: u64,
    /// The server-minted request id, absent from pre-tracing servers.
    pub request_id: Option<qarith_trace::RequestId>,
}

/// Encodes a write acknowledgement from a committed [`WriteOutcome`].
pub fn encode_write_ack(outcome: &WriteOutcome, request_id: qarith_trace::RequestId) -> String {
    format!(
        "{REPLY_MAGIC} ok kind=write epoch={} db={:016x} applied={} noops={} inv_keys={} \
         inv_entries={} inv_plans={} rid={request_id}\n",
        outcome.epoch,
        outcome.db_digest,
        outcome.applied,
        outcome.noops,
        outcome.invalidated_keys,
        outcome.invalidated_entries,
        outcome.plans_invalidated,
    )
}

/// One answer line of a success reply — the μ-relevant bits the
/// bit-identity suites compare, plus provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireAnswer {
    /// IEEE-754 bit pattern of ν (authoritative).
    pub nu_bits: u64,
    /// Monte-Carlo samples behind the estimate.
    pub samples: u64,
    /// Dimension of the sampled direction space.
    pub dimension: u64,
    /// Provenance: served by a cache/dedup instead of fresh sampling.
    pub cached: bool,
    /// Provenance: produced by the rewrite pipeline.
    pub rewritten: bool,
    /// Display form of the candidate tuple.
    pub tuple: String,
}

/// A decoded success reply.
#[derive(Clone, Debug, PartialEq)]
pub struct Reply {
    /// Per-candidate answers, in candidate order.
    pub answers: Vec<WireAnswer>,
    /// The template fingerprint the request mapped to.
    pub fingerprint: String,
    /// Whether the template's plan came from the plan cache.
    pub plan_cached: bool,
    /// The `stats` snapshot line: `(candidates, groups, measured,
    /// dedup_hits, cache_hits)` of this execution.
    pub stats: (u64, u64, u64, u64, u64),
    /// The server-minted request id (`rid=`), absent when talking to a
    /// pre-tracing server.
    pub request_id: Option<qarith_trace::RequestId>,
    /// The epoch the answers were computed against (`epoch=`), absent
    /// when talking to a pre-write-path server.
    pub epoch: Option<u64>,
    /// Content digest of that epoch's database (`db=`), absent when
    /// talking to a pre-write-path server.
    pub db_digest: Option<u64>,
}

/// Encodes a success reply from a served [`QueryResponse`].
pub fn encode_reply(response: &QueryResponse) -> String {
    let mut out = format!(
        "{REPLY_MAGIC} ok answers={} kind=point plan_cached={} epoch={} db={:016x} rid={}\nfp {}\n",
        response.answers.len(),
        u8::from(response.plan_cached),
        response.epoch,
        response.db_digest,
        response.request_id,
        response.fingerprint,
    );
    for answer in &response.answers {
        let c = &answer.certainty;
        let mut flags = String::new();
        if c.cached {
            flags.push('c');
        }
        if c.rewritten {
            flags.push('r');
        }
        if flags.is_empty() {
            flags.push('-');
        }
        out.push_str(&format!(
            "a nu={} bits={:016x} samples={} dim={} flags={flags} tuple={}\n",
            c.value,
            c.value.to_bits(),
            c.samples,
            c.dimension,
            answer.tuple,
        ));
    }
    let s = &response.stats;
    out.push_str(&format!(
        "stats candidates={} groups={} measured={} dedup_hits={} cache_hits={}\n",
        s.candidates, s.groups, s.measured, s.dedup_hits, s.cache_hits,
    ));
    out
}

/// Encodes an error reply.
pub fn encode_error(kind: ErrorKind, message: &str) -> String {
    // Keep the payload line-parseable: the message is everything after
    // the header line, newlines included.
    format!("{REPLY_MAGIC} err kind={}\n{message}\n", kind.name())
}

/// A decoded reply: success or structured error.
#[derive(Clone, Debug, PartialEq)]
pub enum Decoded {
    /// `ok` reply.
    Reply(Reply),
    /// `ok kind=write` acknowledgement.
    Write(WriteAck),
    /// `err` reply.
    Error {
        /// The taxonomy class.
        kind: ErrorKind,
        /// The human-readable message.
        message: String,
    },
}

/// Decodes a reply payload (the client half; tests and `serve_bench
/// --wire` drive it). Failures mean the *server* broke the grammar, so
/// they are plain strings for the harness to surface.
pub fn decode_reply(payload: &[u8]) -> Result<Decoded, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("reply is not UTF-8: {e}"))?;
    let (header, body) = match text.split_once('\n') {
        Some(split) => split,
        None => (text, ""),
    };
    let mut words = header.split_ascii_whitespace();
    if words.next() != Some(REPLY_MAGIC) {
        return Err(format!("reply header must start with `{REPLY_MAGIC}`"));
    }
    match words.next() {
        Some("ok") => {}
        Some("err") => {
            let kind = words
                .next()
                .and_then(|w| w.strip_prefix("kind="))
                .and_then(ErrorKind::parse)
                .ok_or("err reply without a recognized kind=")?;
            return Ok(Decoded::Error { kind, message: body.trim_end().to_string() });
        }
        other => return Err(format!("reply status must be ok|err, got {other:?}")),
    }
    let mut options = Vec::new();
    for option in words {
        let Some((key, value)) = option.split_once('=') else {
            return Err(format!("malformed reply option `{option}`"));
        };
        options.push((key, value));
    }
    let kind = options.iter().find(|(k, _)| *k == "kind").map_or("point", |(_, v)| *v);
    let request_id = match options.iter().find(|(k, _)| *k == "rid") {
        Some((_, value)) => Some(
            qarith_trace::RequestId::parse(value)
                .ok_or_else(|| format!("malformed rid `{value}`"))?,
        ),
        None => None,
    };
    if kind == "write" {
        // Header-only: every field is a header option.
        let get = |name: &str| -> Result<u64, String> {
            let (_, value) = options
                .iter()
                .find(|(k, _)| *k == name)
                .ok_or_else(|| format!("write ack without {name}="))?;
            let radix = if name == "db" { 16 } else { 10 };
            u64::from_str_radix(value, radix).map_err(|_| format!("malformed {name}=`{value}`"))
        };
        if !body.trim().is_empty() {
            return Err("write ack must be header-only".to_string());
        }
        return Ok(Decoded::Write(WriteAck {
            epoch: get("epoch")?,
            db_digest: get("db")?,
            applied: get("applied")?,
            noops: get("noops")?,
            invalidated_keys: get("inv_keys")?,
            invalidated_entries: get("inv_entries")?,
            plans_invalidated: get("inv_plans")?,
            request_id,
        }));
    }
    if kind != "point" {
        return Err(format!("unsupported answer kind `{kind}`"));
    }
    let mut expected_answers = None;
    let mut plan_cached = None;
    let mut epoch = None;
    let mut db_digest = None;
    for (key, value) in options {
        match key {
            "answers" => expected_answers = value.parse::<u64>().ok(),
            "kind" | "rid" => {} // resolved above
            "plan_cached" => plan_cached = Some(value == "1"),
            "epoch" => {
                epoch = Some(value.parse().map_err(|_| format!("malformed epoch `{value}`"))?);
            }
            "db" => {
                db_digest = Some(
                    u64::from_str_radix(value, 16)
                        .map_err(|_| format!("malformed db `{value}`"))?,
                );
            }
            other => return Err(format!("unknown reply option `{other}`")),
        }
    }
    let expected = expected_answers.ok_or("ok reply without answers=")?;
    let plan_cached = plan_cached.ok_or("ok reply without plan_cached=")?;

    let mut fingerprint = None;
    let mut answers = Vec::new();
    let mut stats = None;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("fp ") {
            fingerprint = Some(rest.to_string());
        } else if let Some(rest) = line.strip_prefix("a ") {
            answers.push(decode_answer_line(rest)?);
        } else if let Some(rest) = line.strip_prefix("stats ") {
            stats = Some(decode_stats_line(rest)?);
        } else if !line.trim().is_empty() {
            return Err(format!("unrecognized reply line `{line}`"));
        }
    }
    let fingerprint = fingerprint.ok_or("ok reply without an fp line")?;
    if answers.len() as u64 != expected {
        return Err(format!("reply declared {expected} answers but carried {}", answers.len()));
    }
    let stats = stats.ok_or("ok reply without a stats line")?;
    Ok(Decoded::Reply(Reply {
        answers,
        fingerprint,
        plan_cached,
        stats,
        request_id,
        epoch,
        db_digest,
    }))
}

fn decode_answer_line(rest: &str) -> Result<WireAnswer, String> {
    let mut nu_bits = None;
    let mut samples = None;
    let mut dimension = None;
    let mut flags = None;
    // `tuple=` is last and may contain spaces, so cut it off first.
    let (fields, tuple) =
        rest.split_once("tuple=").ok_or_else(|| format!("answer line without tuple=: `{rest}`"))?;
    for field in fields.split_ascii_whitespace() {
        let Some((key, value)) = field.split_once('=') else {
            return Err(format!("malformed answer field `{field}`"));
        };
        match key {
            "nu" => {} // display copy of `bits`; not authoritative
            "bits" => nu_bits = u64::from_str_radix(value, 16).ok(),
            "samples" => samples = value.parse().ok(),
            "dim" => dimension = value.parse().ok(),
            "flags" => flags = Some(value.to_string()),
            other => return Err(format!("unknown answer field `{other}`")),
        }
    }
    let flags = flags.ok_or("answer line without flags=")?;
    Ok(WireAnswer {
        nu_bits: nu_bits.ok_or("answer line without a parseable bits=")?,
        samples: samples.ok_or("answer line without samples=")?,
        dimension: dimension.ok_or("answer line without dim=")?,
        cached: flags.contains('c'),
        rewritten: flags.contains('r'),
        tuple: tuple.to_string(),
    })
}

fn decode_stats_line(rest: &str) -> Result<(u64, u64, u64, u64, u64), String> {
    let get = |name: &str| -> Result<u64, String> {
        rest.split_ascii_whitespace()
            .find_map(|f| f.strip_prefix(name).and_then(|v| v.strip_prefix('=')))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("stats line without {name}=: `{rest}`"))
    };
    Ok((
        get("candidates")?,
        get("groups")?,
        get("measured")?,
        get("dedup_hits")?,
        get("cache_hits")?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let request =
            Request { epsilon: Some(0.05), sql: "SELECT P.id FROM Products P\nLIMIT 3".into() };
        let decoded = decode_request(encode_request(&request).as_bytes()).expect("round trip");
        assert_eq!(decoded, request);
        let bare = Request { epsilon: None, sql: "SELECT P.id FROM Products P".into() };
        assert_eq!(decode_request(encode_request(&bare).as_bytes()).expect("bare"), bare);
    }

    #[test]
    fn malformed_requests_are_proto_errors() {
        assert!(decode_request(b"\xff\xfe").unwrap_err().contains("UTF-8"));
        assert!(decode_request(b"not-the-magic\nSELECT 1").unwrap_err().contains("header"));
        assert!(decode_request(b"qarith-query/1 epsilon=nope\nSELECT 1")
            .unwrap_err()
            .contains("epsilon"));
        assert!(decode_request(b"qarith-query/1 deadline=5ms\nSELECT 1")
            .unwrap_err()
            .contains("unknown option"));
        assert!(decode_request(b"qarith-query/1\n   ").unwrap_err().contains("empty SQL"));
        assert!(decode_request(b"qarith-query/1 epsilon\nSELECT 1")
            .unwrap_err()
            .contains("key=value"));
    }

    #[test]
    fn error_reply_round_trips() {
        let encoded = encode_error(ErrorKind::Proto, "unknown option `deadline`");
        match decode_reply(encoded.as_bytes()).expect("decodes") {
            Decoded::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::Proto);
                assert_eq!(message, "unknown option `deadline`");
            }
            other => panic!("expected an error reply, got {other:?}"),
        }
    }

    #[test]
    fn error_kinds_round_trip() {
        for kind in [
            ErrorKind::Frame,
            ErrorKind::Proto,
            ErrorKind::Sql,
            ErrorKind::Measure,
            ErrorKind::Write,
            ErrorKind::Internal,
            ErrorKind::Shutdown,
        ] {
            assert_eq!(ErrorKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ErrorKind::parse("timeout"), None);
        assert_eq!(ErrorKind::of_serve_kind("sql"), ErrorKind::Sql);
        assert_eq!(ErrorKind::of_serve_kind("measure"), ErrorKind::Measure);
        assert_eq!(ErrorKind::of_serve_kind("write"), ErrorKind::Write);
        assert_eq!(ErrorKind::of_serve_kind("anything-else"), ErrorKind::Internal);
    }

    #[test]
    fn write_payload_round_trips_every_value_sort() {
        let mut batch = WriteBatch::new();
        batch
            .insert(
                "Products",
                vec![
                    Value::int(7),
                    Value::str("north region"),
                    Value::Num(Rational::checked_new(1, 3).unwrap()),
                    Value::NumNull(qarith_types::NumNullId(42)),
                ],
            )
            .delete("Orders", vec![Value::BaseNull(qarith_types::BaseNullId(9)), Value::num(-5)])
            .update(
                "Market",
                vec![Value::int(1), Value::num(10)],
                vec![Value::int(1), Value::Num(Rational::checked_new(-7, 2).unwrap())],
            );
        let encoded = encode_write(&batch).expect("encodes");
        assert!(encoded.starts_with("qarith-write/1 ops=3\n"));
        assert_eq!(decode_write(encoded.as_bytes()).expect("round trip"), batch);
    }

    #[test]
    fn strings_with_separators_are_encode_errors() {
        let mut batch = WriteBatch::new();
        batch.insert("R", vec![Value::str("has\ttab")]);
        assert!(encode_write(&batch).unwrap_err().contains("separator"));
    }

    #[test]
    fn malformed_write_payloads_are_rejected() {
        assert!(decode_write(b"\xff\xfe").unwrap_err().contains("UTF-8"));
        assert!(decode_write(b"not-the-magic\nins R\tz:1").unwrap_err().contains("header"));
        assert!(decode_write(b"qarith-write/1\nins R\tz:1").unwrap_err().contains("ops="));
        assert!(decode_write(b"qarith-write/1 ops=2\nins R\tz:1\n")
            .unwrap_err()
            .contains("declared 2"));
        assert!(decode_write(b"qarith-write/1 ops=1\nfrob R\tz:1\n")
            .unwrap_err()
            .contains("unknown write opcode"));
        assert!(decode_write(b"qarith-write/1 ops=1\nins R\tz:nope\n")
            .unwrap_err()
            .contains("malformed integer"));
        assert!(decode_write(b"qarith-write/1 ops=1\nins R\tq:1/0\n")
            .unwrap_err()
            .contains("invalid rational"));
        assert!(decode_write(b"qarith-write/1 ops=1\nins R\twat:1\n")
            .unwrap_err()
            .contains("unknown sort tag"));
        assert!(decode_write(b"qarith-write/1 ops=1\nins R\n").unwrap_err().contains("without"));
        assert!(decode_write(b"qarith-write/1 ops=1\nupd R\tz:1\tz:2\n")
            .unwrap_err()
            .contains("=>"));
    }

    #[test]
    fn write_ack_round_trips() {
        let outcome = WriteOutcome {
            epoch: 4,
            db_digest: 0xdead_beef_0123_4567,
            applied: 3,
            noops: 1,
            invalidated_keys: 2,
            invalidated_entries: 5,
            plans_invalidated: 1,
        };
        let rid = qarith_trace::RequestId::parse("68959c1f-7").expect("rid");
        let encoded = encode_write_ack(&outcome, rid);
        match decode_reply(encoded.as_bytes()).expect("decodes") {
            Decoded::Write(ack) => {
                assert_eq!(ack.epoch, 4);
                assert_eq!(ack.db_digest, 0xdead_beef_0123_4567);
                assert_eq!((ack.applied, ack.noops), (3, 1));
                assert_eq!((ack.invalidated_keys, ack.invalidated_entries), (2, 5));
                assert_eq!(ack.plans_invalidated, 1);
                assert_eq!(ack.request_id, Some(rid));
            }
            other => panic!("expected a write ack, got {other:?}"),
        }
        // A truncated ack is a grammar break, not a zero-filled struct.
        let truncated = encoded.replace(" applied=3", "");
        assert!(decode_reply(truncated.as_bytes()).unwrap_err().contains("applied"));
    }

    #[test]
    fn reply_decoder_rejects_grammar_breaks() {
        assert!(decode_reply(b"qarith-reply/1 ok answers=1\nno stats").is_err());
        assert!(decode_reply(b"not-a-reply").is_err());
        assert!(decode_reply(b"qarith-reply/1 maybe").is_err());
        // Declared/actual answer-count mismatch.
        let short = "qarith-reply/1 ok answers=2 plan_cached=0\n\
                     fp select x from y\n\
                     a nu=0.5 bits=3fe0000000000000 samples=100 dim=2 flags=- tuple=(1)\n\
                     stats candidates=1 groups=1 measured=1 dedup_hits=0 cache_hits=0\n";
        assert!(decode_reply(short.as_bytes()).unwrap_err().contains("declared 2"));
    }

    #[test]
    fn answer_lines_carry_bits_flags_and_spacey_tuples() {
        let line = "nu=0.5 bits=3fe0000000000000 samples=400 dim=3 flags=cr tuple=(1, hello world)";
        let answer = decode_answer_line(line).expect("parses");
        assert_eq!(answer.nu_bits, 0.5f64.to_bits());
        assert_eq!((answer.samples, answer.dimension), (400, 3));
        assert!(answer.cached && answer.rewritten);
        assert_eq!(answer.tuple, "(1, hello world)");
    }

    #[test]
    fn reply_rid_is_parsed_when_present_and_tolerated_when_absent() {
        let with = "qarith-reply/1 ok answers=0 plan_cached=1 rid=68959c1f-42\n\
                    fp select x from y\n\
                    stats candidates=0 groups=0 measured=0 dedup_hits=0 cache_hits=0\n";
        match decode_reply(with.as_bytes()).expect("decodes") {
            Decoded::Reply(reply) => {
                let rid = reply.request_id.expect("rid present");
                assert_eq!(rid.to_string(), "68959c1f-42");
            }
            other => panic!("expected ok reply, got {other:?}"),
        }
        // A pre-tracing server never sends rid=; the decoder shrugs.
        let without = with.replace(" rid=68959c1f-42", "");
        match decode_reply(without.as_bytes()).expect("decodes") {
            Decoded::Reply(reply) => assert_eq!(reply.request_id, None),
            other => panic!("expected ok reply, got {other:?}"),
        }
        // A malformed rid is a grammar break, not a silent None.
        let broken = with.replace("rid=68959c1f-42", "rid=what");
        assert!(decode_reply(broken.as_bytes()).unwrap_err().contains("malformed rid"));
    }

    #[test]
    fn reply_epoch_and_db_are_parsed_when_present_and_tolerated_when_absent() {
        let with = "qarith-reply/1 ok answers=0 plan_cached=1 epoch=3 db=00000000deadbeef\n\
                    fp select x from y\n\
                    stats candidates=0 groups=0 measured=0 dedup_hits=0 cache_hits=0\n";
        match decode_reply(with.as_bytes()).expect("decodes") {
            Decoded::Reply(reply) => {
                assert_eq!(reply.epoch, Some(3));
                assert_eq!(reply.db_digest, Some(0xdead_beef));
            }
            other => panic!("expected ok reply, got {other:?}"),
        }
        // A pre-write-path server never sends them; the decoder shrugs.
        let without = with.replace(" epoch=3 db=00000000deadbeef", "");
        match decode_reply(without.as_bytes()).expect("decodes") {
            Decoded::Reply(reply) => {
                assert_eq!(reply.epoch, None);
                assert_eq!(reply.db_digest, None);
            }
            other => panic!("expected ok reply, got {other:?}"),
        }
        assert!(decode_reply(with.replace("epoch=3", "epoch=x").as_bytes())
            .unwrap_err()
            .contains("malformed epoch"));
    }

    #[test]
    fn http_get_never_parses_as_a_sane_length() {
        // `GET ` as a big-endian length prefix demands ~1.19 GB — any
        // reasonable max_frame_bytes rejects it, so the HTTP carve-out
        // can never shadow a legitimate frame.
        assert_eq!(u32::from_be_bytes(HTTP_GET), 0x4745_5420);
        assert!(u32::from_be_bytes(HTTP_GET) > 1 << 30);
    }
}
