//! # qarith-net — the wire-protocol front-end for the query service
//!
//! `qarith-serve` made the paper's engine a long-lived, concurrent,
//! in-process service; this crate puts it on a socket. The claim under
//! test is the same interactive-speed claim (Theorem 8.1 and §9) —
//! adding the network must not change a single answer bit and must not
//! weaken the serving layer's overload behavior. The layering:
//! above `qarith-serve` (it drives [`QueryService`] and nothing
//! deeper), below `qarith-bench` (whose `serve_bench --wire` mode
//! load-tests it through real sockets).
//!
//! Std-only and hand-rolled, like the vendored crates: a
//! thread-per-connection TCP listener speaking a minimal
//! length-prefixed framed protocol ([`frame`] — 4-byte big-endian
//! length, line-oriented UTF-8 payloads). The pieces:
//!
//! * [`NetServer`] ([`server`]) — the listener: tick-sliced blocking
//!   I/O so every wait observes its deadline and the drain flags;
//!   per-connection read/write/idle timeouts with distributed idle
//!   reaping; graceful drain with a bounded force deadline.
//! * **Backpressure** — admission stays the serving layer's job:
//!   [`QueryService::query`] scopes its [`AdmissionGate`] permit to
//!   query *execution*, so a reply wedged against a slow reader never
//!   holds an admission slot (queue, don't shed — and don't let the
//!   network starve the queue).
//! * **`GET /metrics`** ([`metrics`]) — an HTTP/1.0-subset carve-out
//!   on the same port exporting every `as_pairs` counter block in
//!   Prometheus text format, including this crate's [`NetStats`].
//! * **Writes on the wire** — `qarith-write/1` payloads ([`frame`])
//!   carry `INSERT`/`DELETE`/`UPDATE` batches through the same frame
//!   layer into the serving layer's epoch-snapshot write path; the
//!   header-only ack names the epoch and database digest the batch
//!   published, and every query reply names the epoch it read.
//! * [`NetClient`] ([`client`]) — the obviously-correct blocking
//!   client the tests and the wire bench drive.
//! * `netd` (`src/bin/netd.rs`) — a standalone daemon serving a
//!   generated workload database, for netcat-level poking (see the
//!   README quickstart).
//!
//! **Determinism.** The wire protocol transports answers; it never
//! computes. The torture and bit-identity suites hold the server to
//! that: answers through real sockets are bit-identical (ν bit
//! patterns, sample counts, dimensions, candidate order) to in-process
//! [`QueryService::query`] calls, under concurrency, adversarial
//! framing, and drain.
//!
//! This crate's `server.rs`, `frame.rs`, and `metrics.rs` are part of
//! analyze.toml's panic-linted request path, and its connection
//! registry is the `NetConnRegistry` class of the declared lock
//! hierarchy; `qarith-analyze --deny-all` gates both in CI.
//!
//! [`QueryService`]: qarith_serve::QueryService
//! [`QueryService::query`]: qarith_serve::QueryService::query
//! [`AdmissionGate`]: qarith_serve::AdmissionGate

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod metrics;
pub mod server;

pub use client::{scrape_metrics, NetClient};
pub use frame::{Decoded, ErrorKind, Reply, Request, WireAnswer, WriteAck};
pub use server::{DrainOutcome, NetConfig, NetServer, NetStats};
