//! The `GET /metrics` exposition: every `as_pairs` counter block in
//! Prometheus text format (version 0.0.4).
//!
//! One metric per counter, named `qarith_<block>_<counter>`, each with
//! its `# HELP`/`# TYPE` preamble. Blocks and the EXPERIMENTS.md
//! counter table they mirror:
//!
//! | prefix                  | source                                    |
//! |-------------------------|-------------------------------------------|
//! | `qarith_batch_`         | running [`BatchStats`] sums of every executed request |
//! | `qarith_rewrite_`       | the nested [`RewriteStats`] sums          |
//! | `qarith_nucache_`       | the single-shot [`CacheStats`] block — structurally 0 here (see below) |
//! | `qarith_sharded_cache_` | the serving ν-cache ([`ShardedCacheStats`]) |
//! | `qarith_service_`       | plan cache + request accounting ([`ServiceStats`]) |
//! | `qarith_admission_`     | the gate ([`AdmissionStats`]), including the `in_flight` gauge |
//! | `qarith_net_`           | the wire layer ([`NetStats`])             |
//!
//! **Why `qarith_nucache_*` is always 0 on this endpoint.** The
//! unbounded single-lock `NuCache` serves only the single-shot
//! library/CLI routes, where its bit-pinned behavior is part of the
//! determinism contract; the serving path replaced it with the bounded
//! sharded cache. The block is exported anyway — zeroed, by
//! construction — so one scrape config covers every counter in the
//! workspace table and a dashboard can tell "zero because unused" from
//! "missing because the exporter changed".
//!
//! Counter vs gauge follows the semantics, not the block: monotone
//! sums are `counter`; point-in-time levels (`threads`, `entries`,
//! `resident_bytes`, `shards`, `plans`, `in_flight`, `max_in_flight`,
//! `connections_active`) are `gauge`.
//!
//! [`BatchStats`]: qarith_core::BatchStats
//! [`RewriteStats`]: qarith_core::RewriteStats
//! [`CacheStats`]: qarith_core::CacheStats
//! [`ShardedCacheStats`]: qarith_serve::ShardedCacheStats
//! [`ServiceStats`]: qarith_serve::ServiceStats
//! [`AdmissionStats`]: qarith_serve::AdmissionStats

use qarith_serve::QueryService;

use crate::server::NetStats;

/// Counter names that are levels, not monotone sums.
const GAUGES: [&str; 8] = [
    "threads",
    "entries",
    "resident_bytes",
    "shards",
    "plans",
    "in_flight",
    "max_in_flight",
    "connections_active",
];

/// Renders the full exposition for one service + wire-layer snapshot.
pub fn render(service: &QueryService, net: &NetStats) -> String {
    let mut out = String::new();
    let totals = service.batch_totals();
    block(
        &mut out,
        "qarith_batch",
        "running BatchStats sums over every executed request",
        &totals.as_pairs(),
    );
    block(
        &mut out,
        "qarith_rewrite",
        "running RewriteStats sums over every executed request",
        &totals.rewrite.as_pairs(),
    );
    // The single-shot NuCache block, zeroed by construction (module
    // docs): the serving path never touches it.
    block(
        &mut out,
        "qarith_nucache",
        "single-shot NuCache (unused by the serving path; always 0 here)",
        &qarith_core::CacheStats::default().as_pairs(),
    );
    block(
        &mut out,
        "qarith_sharded_cache",
        "bounded sharded serving nu-cache",
        &service.cache_stats().as_pairs(),
    );
    block(
        &mut out,
        "qarith_service",
        "plan cache and request accounting",
        &service.stats().as_pairs(),
    );
    block(&mut out, "qarith_admission", "admission gate", &service.admission_stats().as_pairs());
    block(&mut out, "qarith_net", "wire layer", &net.as_pairs());
    out
}

/// Appends one counter block.
fn block(out: &mut String, prefix: &str, what: &str, pairs: &[(&'static str, u64)]) {
    for (name, value) in pairs {
        let kind = if GAUGES.contains(name) { "gauge" } else { "counter" };
        out.push_str(&format!(
            "# HELP {prefix}_{name} qarith {what}: `{name}` (see EXPERIMENTS.md, \
             \"Exported stats counters\").\n\
             # TYPE {prefix}_{name} {kind}\n\
             {prefix}_{name} {value}\n"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every name in the exposition is well-formed and typed, and the
    /// block count covers the whole EXPERIMENTS table (7 batch + 6
    /// rewrite + 3 nucache + 6 sharded + 5 service + 4 admission)
    /// plus the 7 net counters.
    #[test]
    fn exposition_is_complete_and_well_formed() {
        let db = qarith_datagen::sales::sales_database(
            &qarith_datagen::WorkloadScale::Tiny.params(),
            2020,
        );
        let service = QueryService::new(db, qarith_serve::ServeConfig::default());
        service.query("SELECT P.id FROM Products P").expect("query serves");
        let text = render(&service, &NetStats::default());

        let samples: Vec<&str> =
            text.lines().filter(|l| !l.starts_with('#') && !l.trim().is_empty()).collect();
        assert_eq!(samples.len(), 7 + 6 + 3 + 6 + 5 + 4 + 7, "one sample per counter");
        for line in &samples {
            let mut words = line.split_ascii_whitespace();
            let name = words.next().expect("metric name");
            let value = words.next().expect("metric value");
            assert!(name.starts_with("qarith_"), "prefixed: {name}");
            assert!(value.parse::<u64>().is_ok(), "integer sample: {line}");
            assert!(text.contains(&format!("# TYPE {name} ")), "typed: {name}");
            assert!(text.contains(&format!("# HELP {name} ")), "documented: {name}");
        }
        // Spot-check semantics: the query above measured something.
        assert!(text.contains("qarith_service_queries 1"));
        assert!(text.contains("# TYPE qarith_admission_in_flight gauge"));
        assert!(text.contains("# TYPE qarith_net_frames_in counter"));
        assert!(text.contains("qarith_nucache_hits 0"));
    }
}
