//! The `GET /metrics` exposition: every `as_pairs` counter block in
//! Prometheus text format (version 0.0.4).
//!
//! One metric per counter, named `qarith_<block>_<counter>`, each with
//! its `# HELP`/`# TYPE` preamble. Blocks and the EXPERIMENTS.md
//! counter table they mirror:
//!
//! | prefix                  | source                                    |
//! |-------------------------|-------------------------------------------|
//! | `qarith_batch_`         | running [`BatchStats`] sums of every executed request |
//! | `qarith_rewrite_`       | the nested [`RewriteStats`] sums          |
//! | `qarith_nucache_`       | the single-shot [`CacheStats`] block — structurally 0 here (see below) |
//! | `qarith_sharded_cache_` | the serving ν-cache ([`ShardedCacheStats`]) |
//! | `qarith_service_`       | plan cache + request accounting ([`ServiceStats`]) |
//! | `qarith_admission_`     | the gate ([`AdmissionStats`]), including the `in_flight` gauge |
//! | `qarith_net_`           | the wire layer ([`NetStats`])             |
//!
//! **Why `qarith_nucache_*` is always 0 on this endpoint.** The
//! unbounded single-lock `NuCache` serves only the single-shot
//! library/CLI routes, where its bit-pinned behavior is part of the
//! determinism contract; the serving path replaced it with the bounded
//! sharded cache. The block is exported anyway — zeroed, by
//! construction — so one scrape config covers every counter in the
//! workspace table and a dashboard can tell "zero because unused" from
//! "missing because the exporter changed".
//!
//! Counter vs gauge follows the semantics, not the block: monotone
//! sums are `counter`; point-in-time levels (`threads`, `entries`,
//! `resident_bytes`, `shards`, `plans`, `in_flight`, `max_in_flight`,
//! `connections_active`) are `gauge`.
//!
//! After the counter blocks come the **per-stage latency histograms**:
//! one `qarith_stage_<stage>_seconds` family per
//! [`qarith_trace::Stage`], rendered from
//! [`QueryService::latency_stats`] in standard Prometheus histogram
//! form — cumulative `_bucket{le="…"}` samples at the fixed
//! `1000·2^i` ns bounds (expressed in seconds), a final `le="+Inf"`
//! bucket, `_sum` (seconds), and `_count`. Because the tracer derives
//! the count from the bucket counts, `_count` always equals the
//! `+Inf` cumulative bucket even when a scrape races recording.
//!
//! [`QueryService::latency_stats`]: qarith_serve::QueryService::latency_stats
//!
//! [`BatchStats`]: qarith_core::BatchStats
//! [`RewriteStats`]: qarith_core::RewriteStats
//! [`CacheStats`]: qarith_core::CacheStats
//! [`ShardedCacheStats`]: qarith_serve::ShardedCacheStats
//! [`ServiceStats`]: qarith_serve::ServiceStats
//! [`AdmissionStats`]: qarith_serve::AdmissionStats

use qarith_serve::QueryService;
use qarith_trace::HistogramSnapshot;

use crate::server::NetStats;

/// Counter names that are levels, not monotone sums.
const GAUGES: [&str; 9] = [
    "threads",
    "entries",
    "resident_bytes",
    "shards",
    "plans",
    "epoch",
    "in_flight",
    "max_in_flight",
    "connections_active",
];

/// Renders the full exposition for one service + wire-layer snapshot.
pub fn render(service: &QueryService, net: &NetStats) -> String {
    let mut out = String::new();
    let totals = service.batch_totals();
    block(
        &mut out,
        "qarith_batch",
        "running BatchStats sums over every executed request",
        &totals.as_pairs(),
    );
    block(
        &mut out,
        "qarith_rewrite",
        "running RewriteStats sums over every executed request",
        &totals.rewrite.as_pairs(),
    );
    // The single-shot NuCache block, zeroed by construction (module
    // docs): the serving path never touches it.
    block(
        &mut out,
        "qarith_nucache",
        "single-shot NuCache (unused by the serving path; always 0 here)",
        &qarith_core::CacheStats::default().as_pairs(),
    );
    block(
        &mut out,
        "qarith_sharded_cache",
        "bounded sharded serving nu-cache",
        &service.cache_stats().as_pairs(),
    );
    block(
        &mut out,
        "qarith_service",
        "plan cache and request accounting",
        &service.stats().as_pairs(),
    );
    block(&mut out, "qarith_admission", "admission gate", &service.admission_stats().as_pairs());
    block(&mut out, "qarith_net", "wire layer", &net.as_pairs());
    for (stage, snapshot) in &service.latency_stats().stages {
        histogram_block(&mut out, *stage, snapshot);
    }
    out
}

/// Appends one per-stage latency histogram family.
fn histogram_block(out: &mut String, stage: qarith_trace::Stage, snap: &HistogramSnapshot) {
    let name = format!("qarith_stage_{}_seconds", stage.name());
    out.push_str(&format!(
        "# HELP {name} qarith per-request stage latency: {what}.\n# TYPE {name} histogram\n",
        what = stage.what(),
    ));
    for (bound, seen) in snap.cumulative() {
        match bound {
            Some(nanos) => {
                out.push_str(&format!("{name}_bucket{{le=\"{}\"}} {seen}\n", seconds(nanos)));
            }
            None => out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {seen}\n")),
        }
    }
    out.push_str(&format!("{name}_sum {}\n", seconds(snap.sum_nanos)));
    out.push_str(&format!("{name}_count {}\n", snap.count()));
}

/// Nanoseconds as a decimal-seconds literal with no float rounding:
/// `1000` → `0.000001`, `67108864000` → `67.108864`, `2000000000` →
/// `2`. Stable digits keep `le=` label values identical across scrapes
/// (Prometheus treats the label as an opaque string).
fn seconds(nanos: u64) -> String {
    let whole = nanos / 1_000_000_000;
    let frac = nanos % 1_000_000_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        let digits = format!("{frac:09}");
        format!("{whole}.{}", digits.trim_end_matches('0'))
    }
}

/// Appends one counter block.
fn block(out: &mut String, prefix: &str, what: &str, pairs: &[(&'static str, u64)]) {
    for (name, value) in pairs {
        let kind = if GAUGES.contains(name) { "gauge" } else { "counter" };
        out.push_str(&format!(
            "# HELP {prefix}_{name} qarith {what}: `{name}` (see EXPERIMENTS.md, \
             \"Exported stats counters\").\n\
             # TYPE {prefix}_{name} {kind}\n\
             {prefix}_{name} {value}\n"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every name in the exposition is well-formed and typed, and the
    /// block count covers the whole EXPERIMENTS table (7 batch + 6
    /// rewrite + 3 nucache + 8 sharded + 9 service + 4 admission)
    /// plus the 7 net counters.
    #[test]
    fn exposition_is_complete_and_well_formed() {
        let db = qarith_datagen::sales::sales_database(
            &qarith_datagen::WorkloadScale::Tiny.params(),
            2020,
        );
        let service = QueryService::new(db, qarith_serve::ServeConfig::default());
        service.query("SELECT P.id FROM Products P").expect("query serves");
        let text = render(&service, &NetStats::default());

        let (stage_samples, counter_samples): (Vec<&str>, Vec<&str>) = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
            .partition(|l| l.starts_with("qarith_stage_"));
        assert_eq!(counter_samples.len(), 7 + 6 + 3 + 8 + 9 + 4 + 7, "one sample per counter");
        for line in &counter_samples {
            let mut words = line.split_ascii_whitespace();
            let name = words.next().expect("metric name");
            let value = words.next().expect("metric value");
            assert!(name.starts_with("qarith_"), "prefixed: {name}");
            assert!(value.parse::<u64>().is_ok(), "integer sample: {line}");
            assert!(text.contains(&format!("# TYPE {name} ")), "typed: {name}");
            assert!(text.contains(&format!("# HELP {name} ")), "documented: {name}");
        }
        // One histogram family per Stage: 27 finite buckets + the +Inf
        // bucket + _sum + _count.
        let per_family = qarith_trace::BUCKETS + 2;
        assert_eq!(stage_samples.len(), qarith_trace::Stage::COUNT * per_family);
        for stage in qarith_trace::Stage::ALL {
            let family = format!("qarith_stage_{}_seconds", stage.name());
            assert!(text.contains(&format!("# TYPE {family} histogram")), "typed: {family}");
            assert!(text.contains(&format!("# HELP {family} ")), "documented: {family}");
            assert!(text.contains(&format!("{family}_bucket{{le=\"+Inf\"}}")));
        }
        // Bucket bounds render as exact decimal seconds; the in-process
        // query above recorded a Total observation, so _count is alive.
        assert!(text.contains("qarith_stage_total_seconds_bucket{le=\"0.000001\"}"));
        assert!(text.contains("qarith_stage_total_seconds_bucket{le=\"67.108864\"}"));
        assert!(text.contains("qarith_stage_total_seconds_count 1"));
        // Spot-check semantics: the query above measured something.
        assert!(text.contains("qarith_service_queries 1"));
        assert!(text.contains("# TYPE qarith_admission_in_flight gauge"));
        assert!(text.contains("# TYPE qarith_service_epoch gauge"));
        assert!(text.contains("# TYPE qarith_sharded_cache_invalidations counter"));
        assert!(text.contains("# TYPE qarith_net_frames_in counter"));
        assert!(text.contains("qarith_nucache_hits 0"));
    }

    /// The `le=` label formatter is exact and trim-stable.
    #[test]
    fn seconds_formatting_is_exact() {
        assert_eq!(seconds(0), "0");
        assert_eq!(seconds(1_000), "0.000001");
        assert_eq!(seconds(1_500), "0.0000015");
        assert_eq!(seconds(2_000_000_000), "2");
        assert_eq!(seconds(67_108_864_000), "67.108864");
        assert_eq!(seconds(u64::MAX), "18446744073.709551615");
    }
}
