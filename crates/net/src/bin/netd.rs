//! `netd` — the standalone qarith wire daemon.
//!
//! Generates a sales workload database at a chosen scale, wraps it in
//! a [`QueryService`], and serves the framed wire protocol (plus
//! `GET /metrics` and `GET /slow`) until killed or told to drain:
//!
//! ```text
//! netd [--addr HOST:PORT] [--scale tiny|small|medium|paper] \
//!      [--seed N] [--epsilon F] [--max-in-flight N] \
//!      [--slow-threshold-ms N] [--quiet]
//! ```
//!
//! Defaults match `serve_bench`'s serving regime (seed 2020, ε 0.02,
//! AFPRAS with the paper's `m = ⌈ε⁻²⌉` and the suite's sampling-seed
//! derivation), so answers from a default `netd` are bit-comparable to
//! the serve/wire benches at equal scale and seed. See the README's
//! "Talk to it over the wire" quickstart for a netcat session and
//! "Observing a running server" for the metrics/slow-log tour.
//!
//! Writing `quit` (or `drain`, or `stop`) on stdin drains the server
//! gracefully and prints a final summary: the net counters plus the
//! per-stage p50/p95/p99 latency table and the slow-query count. A
//! closed stdin (e.g. `netd ... &` under a shell with stdin from
//! `/dev/null`) parks the daemon instead of draining it, so
//! backgrounding still works.

use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use qarith_core::afpras::{AfprasOptions, SampleCount};
use qarith_core::{BatchOptions, MeasureOptions, MethodChoice};
use qarith_datagen::WorkloadScale;
use qarith_net::{NetConfig, NetServer};
use qarith_serve::{QueryService, ServeConfig};

const USAGE: &str = "usage: netd [flags]\n\
     --addr HOST:PORT        bind address (default 127.0.0.1:0; the chosen\n\
                             address is printed as the first stdout line)\n\
     --scale NAME            workload scale: tiny|small|medium|paper (default tiny)\n\
     --seed N                datagen seed (default 2020)\n\
     --epsilon F             additive error bound in (0, 1] (default 0.02)\n\
     --max-in-flight N       admission-gate permits (default 64)\n\
     --slow-threshold-ms N   log requests slower than N ms to the slow-query\n\
                             ring (default 0 = disabled; `GET /slow` dumps it)\n\
     --quiet                 suppress startup/progress chatter on stderr\n\
     --help                  print this help and exit\n\
   stdin: `quit` | `drain` | `stop` drains gracefully and prints the final\n\
   per-stage latency summary; closed stdin parks the daemon forever.";

fn usage(problem: &str) -> ExitCode {
    eprintln!("netd: {problem}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:0".to_string();
    let mut scale = WorkloadScale::Tiny;
    let mut seed = 2020u64;
    let mut epsilon = 0.02f64;
    let mut max_in_flight = 64usize;
    let mut slow_threshold_ms = 0u64;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next();
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--quiet" => quiet = true,
            "--addr" => match value() {
                Some(a) => addr = a,
                None => return usage("--addr expects HOST:PORT"),
            },
            "--scale" => match value().as_deref().and_then(WorkloadScale::parse) {
                Some(s) => scale = s,
                None => return usage("--scale expects tiny|small|medium|paper"),
            },
            "--seed" => match value().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => return usage("--seed expects an integer"),
            },
            "--epsilon" => match value().and_then(|v| v.parse().ok()) {
                Some(e) if (0.0..=1.0).contains(&e) && e > 0.0 => epsilon = e,
                _ => return usage("--epsilon expects a float in (0, 1]"),
            },
            "--max-in-flight" => match value().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => max_in_flight = n,
                _ => return usage("--max-in-flight expects a positive integer"),
            },
            "--slow-threshold-ms" => match value().and_then(|v| v.parse().ok()) {
                Some(n) => slow_threshold_ms = n,
                None => return usage("--slow-threshold-ms expects a non-negative integer"),
            },
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    if !quiet {
        eprintln!("netd: generating `{}` sales database (seed {seed})...", scale.name());
    }
    let db = qarith_datagen::sales::sales_database(&scale.params(), seed);

    // The serving regime of `serve_bench` (crates/bench/src/serve.rs):
    // forced AFPRAS, the paper's m = ⌈ε⁻²⌉, and the workload suite's
    // sampling-seed derivation (seed ^ 0xF1616), so suite, serve, and
    // wire runs at equal config sample identically.
    let options = MeasureOptions {
        method: MethodChoice::Afpras,
        afpras: AfprasOptions {
            epsilon,
            samples: SampleCount::Paper,
            seed: seed ^ 0xF1616,
            ..AfprasOptions::default()
        },
        batch: BatchOptions { threads: 1, dedup: true },
        ..MeasureOptions::default()
    };
    let service = Arc::new(QueryService::new(
        db,
        ServeConfig {
            options,
            max_in_flight,
            slow_threshold_nanos: slow_threshold_ms.saturating_mul(1_000_000),
            ..ServeConfig::default()
        },
    ));

    let config = NetConfig { addr, ..NetConfig::default() };
    let server = match NetServer::start(service, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("netd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", server.local_addr());
    if !quiet {
        eprintln!(
            "netd: serving scale={} seed={seed} epsilon={epsilon} on {} \
             (framed protocol; `GET /metrics` for Prometheus text, `GET /slow` \
             for the slow-query log); `quit` on stdin or ctrl-c to stop",
            scale.name(),
            server.local_addr()
        );
    }

    // Wait for a drain command. EOF on stdin is NOT a drain: a
    // backgrounded `netd &` inherits a closed stdin immediately, and
    // killing it on launch would be rude — park instead.
    let mut saw_eof = false;
    for line in std::io::stdin().lock().lines() {
        match line {
            Ok(cmd) if matches!(cmd.trim(), "quit" | "drain" | "stop") => {
                drain_and_report(&server, quiet);
                return ExitCode::SUCCESS;
            }
            Ok(_) => {} // unknown chatter; keep serving
            Err(_) => {
                saw_eof = true;
                break;
            }
        }
    }
    let _ = saw_eof; // lines() also just ends on clean EOF
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Drains the server and prints the final accounting: net counters,
/// the per-stage p50/p95/p99 latency table, and the slow-query count.
fn drain_and_report(server: &NetServer, quiet: bool) {
    if !quiet {
        eprintln!("netd: draining...");
    }
    let outcome = server.shutdown(Duration::from_secs(5));
    let stats = server.stats();
    eprintln!(
        "netd: drained (forced={}) frames_in={} frames_out={} connections={} protocol_errors={}",
        outcome.forced,
        stats.frames_in,
        stats.frames_out,
        stats.connections_opened,
        stats.protocol_errors,
    );
    let service = server.service();
    eprintln!("netd: per-stage latency (count, p50/p95/p99):");
    for summary in service.latency_stats().summaries() {
        if summary.count == 0 {
            continue;
        }
        eprintln!(
            "netd:   {:<14} n={:<6} p50={} p95={} p99={}",
            summary.stage.name(),
            summary.count,
            display_nanos(summary.p50_nanos),
            display_nanos(summary.p95_nanos),
            display_nanos(summary.p99_nanos),
        );
    }
    let slow = service.slow_queries();
    eprintln!("netd: slow queries over threshold: {}", slow.len());
}

/// Nanoseconds for human eyes: microseconds below 1 ms, milliseconds
/// above.
fn display_nanos(nanos: u64) -> String {
    if nanos < 1_000_000 {
        format!("{:.1}us", nanos as f64 / 1_000.0)
    } else {
        format!("{:.1}ms", nanos as f64 / 1_000_000.0)
    }
}
