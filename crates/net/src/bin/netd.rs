//! `netd` — the standalone qarith wire daemon.
//!
//! Generates a sales workload database at a chosen scale, wraps it in
//! a [`QueryService`], and serves the framed wire protocol (plus
//! `GET /metrics`) until killed:
//!
//! ```text
//! netd [--addr HOST:PORT] [--scale tiny|small|medium|paper] \
//!      [--seed N] [--epsilon F] [--max-in-flight N]
//! ```
//!
//! Defaults match `serve_bench`'s serving regime (seed 2020, ε 0.02,
//! AFPRAS with the paper's `m = ⌈ε⁻²⌉` and the suite's sampling-seed
//! derivation), so answers from a default `netd` are bit-comparable to
//! the serve/wire benches at equal scale and seed. See the README's
//! "Talk to it over the wire" quickstart for a netcat session.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use qarith_core::afpras::{AfprasOptions, SampleCount};
use qarith_core::{BatchOptions, MeasureOptions, MethodChoice};
use qarith_datagen::WorkloadScale;
use qarith_net::{NetConfig, NetServer};
use qarith_serve::{QueryService, ServeConfig};

fn usage(problem: &str) -> ExitCode {
    eprintln!("netd: {problem}");
    eprintln!(
        "usage: netd [--addr HOST:PORT] [--scale tiny|small|medium|paper] \
         [--seed N] [--epsilon F] [--max-in-flight N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:0".to_string();
    let mut scale = WorkloadScale::Tiny;
    let mut seed = 2020u64;
    let mut epsilon = 0.02f64;
    let mut max_in_flight = 64usize;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next();
        match flag.as_str() {
            "--addr" => match value() {
                Some(a) => addr = a,
                None => return usage("--addr expects HOST:PORT"),
            },
            "--scale" => match value().as_deref().and_then(WorkloadScale::parse) {
                Some(s) => scale = s,
                None => return usage("--scale expects tiny|small|medium|paper"),
            },
            "--seed" => match value().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => return usage("--seed expects an integer"),
            },
            "--epsilon" => match value().and_then(|v| v.parse().ok()) {
                Some(e) if (0.0..=1.0).contains(&e) && e > 0.0 => epsilon = e,
                _ => return usage("--epsilon expects a float in (0, 1]"),
            },
            "--max-in-flight" => match value().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => max_in_flight = n,
                _ => return usage("--max-in-flight expects a positive integer"),
            },
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    eprintln!("netd: generating `{}` sales database (seed {seed})...", scale.name());
    let db = qarith_datagen::sales::sales_database(&scale.params(), seed);

    // The serving regime of `serve_bench` (crates/bench/src/serve.rs):
    // forced AFPRAS, the paper's m = ⌈ε⁻²⌉, and the workload suite's
    // sampling-seed derivation (seed ^ 0xF1616), so suite, serve, and
    // wire runs at equal config sample identically.
    let options = MeasureOptions {
        method: MethodChoice::Afpras,
        afpras: AfprasOptions {
            epsilon,
            samples: SampleCount::Paper,
            seed: seed ^ 0xF1616,
            ..AfprasOptions::default()
        },
        batch: BatchOptions { threads: 1, dedup: true },
        ..MeasureOptions::default()
    };
    let service = Arc::new(QueryService::new(
        db,
        ServeConfig { options, max_in_flight, ..ServeConfig::default() },
    ));

    let config = NetConfig { addr, ..NetConfig::default() };
    let server = match NetServer::start(service, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("netd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", server.local_addr());
    eprintln!(
        "netd: serving scale={} seed={seed} epsilon={epsilon} on {} \
         (framed protocol; `GET /metrics` for Prometheus text); ctrl-c to stop",
        scale.name(),
        server.local_addr()
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
