//! # qarith-core — measures of certainty for queries with arithmetic
//!
//! The primary contribution of Console, Hofer & Libkin, *Queries with
//! Arithmetic on Incomplete Databases* (PODS 2020): a measure
//! `μ(q, D, (a,s)) ∈ [0,1]` of how certain a candidate tuple is as an
//! answer to an FO(+,·,<) query over a two-sorted incomplete database,
//! defined as the asymptotic fraction (by volume) of valuations of the
//! numerical nulls under which the tuple is an answer.
//!
//! Layering: the measurement hub — above `qarith-constraints`,
//! `qarith-rewrite`, `qarith-engine`, and `qarith-geometry`; below
//! `qarith-serve` (which drives the prepared-plan split of
//! [`pipeline`]) and `qarith-bench`. Paper touchpoints: Theorems 7.1
//! and 8.1, §§6–10.
//!
//! ## Quick start
//!
//! ```
//! use qarith_core::{CertaintyEngine, MeasureOptions};
//! use qarith_query::{Arg, BaseTerm, CompareOp, Formula, NumTerm, Query, TypedVar};
//! use qarith_types::{Column, Database, NumNullId, Relation, RelationSchema, Tuple, Value};
//!
//! // R(a: base, x: num, y: num) with one tuple (1, ⊤0, ⊤1).
//! let mut db = Database::new();
//! let schema = RelationSchema::new(
//!     "R",
//!     vec![Column::base("a"), Column::num("x"), Column::num("y")],
//! ).unwrap();
//! let mut r = Relation::empty(schema);
//! r.insert_values(vec![
//!     Value::int(1),
//!     Value::NumNull(NumNullId(0)),
//!     Value::NumNull(NumNullId(1)),
//! ]).unwrap();
//! db.add_relation(r).unwrap();
//!
//! // σ_{x>y}(R): is tuple 1 selected?  μ = 1/2.
//! let q = Query::new(
//!     vec![TypedVar::base("a")],
//!     Formula::exists(
//!         vec![TypedVar::num("x"), TypedVar::num("y")],
//!         Formula::and(vec![
//!             Formula::rel("R", vec![
//!                 Arg::Base(BaseTerm::var("a")),
//!                 Arg::Num(NumTerm::var("x")),
//!                 Arg::Num(NumTerm::var("y")),
//!             ]),
//!             Formula::cmp(NumTerm::var("x"), CompareOp::Gt, NumTerm::var("y")),
//!         ]),
//!     ),
//!     &db.catalog(),
//! ).unwrap();
//!
//! let engine = CertaintyEngine::new(MeasureOptions::default());
//! let est = engine.measure(&q, &db, &Tuple::new(vec![Value::int(1)])).unwrap();
//! assert_eq!(est.value, 0.5);
//! ```
//!
//! ## Modules
//!
//! * [`afpras`] — the additive scheme of Theorem 8.1 (direction sampling
//!   with asymptotic truth tests), with the §9 partial-vector sampling
//!   optimization and optional multi-threading;
//! * [`fpras`] — the multiplicative scheme of Theorem 7.1 for CQ(+,<)
//!   (union-of-cones volume estimation);
//! * [`exact`] — exact evaluators for dimensions 0–1, order formulas
//!   (exact rationals via cell counting), and 2-D linear formulas
//!   (arc arithmetic — reproduces the paper's intro example and the
//!   Proposition 6.1 arctangent family);
//! * [`zero_one`] — the §2 zero-one law for generic queries;
//! * [`reductions`] — executable versions of the §6 hardness gadgets
//!   (Theorem 6.3, Proposition 6.2), used as validation workloads;
//! * [`pipeline`] — the [`CertaintyEngine`]: query + database →
//!   candidates → ground formulas → measures, with automatic method
//!   selection and the batch measurement path (canonical dedup +
//!   parallel fan-out, [`CertaintyEngine::measure_batch`]);
//! * [`nucache`] — the ν-cache: memoized, bit-identical measures keyed
//!   by canonical formula and options fingerprint;
//! * [`decompose`] — the rewrite pipeline's executor
//!   (`MeasureOptions::rewrite`): `qarith-rewrite` simplifies and
//!   splits formulas into variable-disjoint factors, whose asymptotic
//!   events are independent under the direction measure; factors are
//!   routed to exact evaluators wherever possible and the measures
//!   multiply;
//! * [`conditional`] — the §10 extension: conditional measures
//!   `ν(φ | ρ)` under scale-insensitive attribute constraints
//!   (sign/ratio restrictions);
//! * [`lattice`] — the §10 integer-domain measure via exact lattice
//!   counting, used to validate the Gauss-circle convergence claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod afpras;
pub mod conditional;
pub mod decompose;
mod error;
mod estimate;
pub mod exact;
pub mod fpras;
pub mod lattice;
pub mod nucache;
pub mod pipeline;
pub mod reductions;
pub mod report;
pub mod zero_one;

pub use afpras::{AfprasOptions, SampleCount};
pub use decompose::RewriteStats;
pub use error::MeasureError;
pub use estimate::{CertaintyEstimate, Method};
pub use fpras::FprasOptions;
pub use nucache::{CacheStats, CertaintyCache, NuCache};
pub use pipeline::{
    AnswerWithCertainty, BatchOptions, BatchOutcome, BatchPlan, BatchStats, CertaintyEngine,
    MeasureOptions, MethodChoice,
};
pub use qarith_rewrite::{FactorBudget, RewriteOptions};
