//! The additive FPRAS of Theorem 8.1.
//!
//! `ν(φ)` equals the probability that a direction `a`, uniform on the
//! unit sphere, satisfies `lim_{k→∞} f_{φ,a}(k) = 1` (Lemma 8.3; sphere
//! vs ball is immaterial since the limit only depends on the direction).
//! The scheme samples `m` directions, tests the limit with the
//! polynomial-time procedure of Lemma 8.4 (leading-coefficient analysis,
//! implemented by [`CompiledFormula`]), and returns the sample mean. By
//! Hoeffding, `m ≥ ln(2/δ)/(2ε²)` gives `|est − ν(φ)| < ε` with
//! probability `≥ 1 − δ`; the paper's `m ≥ ε⁻²` with δ = 1/4 is available
//! as a compatibility switch.
//!
//! Two of the paper's §9 implementation notes are reproduced faithfully:
//!
//! * **partial-vector sampling** — only the coordinates of nulls that
//!   occur in `φ` are sampled (the projection of a uniform sphere vector
//!   onto a coordinate subspace is uniform on the sub-sphere after
//!   rescaling, and the asymptotic test ignores scale), which is the
//!   optimization the paper credits for its practical speed;
//! * the Gaussian-normalization sampler of \[8\].
//!
//! Sampling is optionally parallelized across threads with
//! `std::thread::scope`; each worker owns a deterministically-derived
//! RNG, so results are reproducible for a fixed seed and thread count.

use qarith_constraints::asymptotic::CompiledFormula;
use qarith_constraints::QfFormula;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::MeasureError;
use crate::estimate::{CertaintyEstimate, Method};

/// How many directions to draw.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SampleCount {
    /// Hoeffding-calibrated: `m = ⌈ln(2/δ) / (2ε²)⌉`.
    Hoeffding,
    /// The paper's §8 prescription: `m = ⌈ε⁻²⌉` (with δ fixed at 1/4).
    Paper,
    /// An explicit sample count (ablation experiments).
    Fixed(usize),
}

/// Options for the additive scheme.
#[derive(Clone, Debug)]
pub struct AfprasOptions {
    /// Additive error ε ∈ (0, 1].
    pub epsilon: f64,
    /// Failure probability δ ∈ (0, 1).
    pub delta: f64,
    /// Sample-count policy.
    pub samples: SampleCount,
    /// RNG seed (runs are deterministic given seed and thread count).
    pub seed: u64,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Ablation switch: when `Some(n)`, sample full `n`-dimensional
    /// direction vectors and project onto the formula's coordinates —
    /// the unoptimized strategy the paper's §9 explicitly moved away
    /// from. `None` (default) samples only the needed coordinates.
    pub full_dimension: Option<usize>,
}

impl Default for AfprasOptions {
    fn default() -> Self {
        AfprasOptions {
            epsilon: 0.05,
            delta: 0.25,
            samples: SampleCount::Hoeffding,
            seed: 0xA1B2_C3D4,
            threads: 1,
            full_dimension: None,
        }
    }
}

impl AfprasOptions {
    /// Convenience: a given ε with the remaining defaults.
    pub fn with_epsilon(epsilon: f64) -> AfprasOptions {
        AfprasOptions { epsilon, ..AfprasOptions::default() }
    }

    /// The number of directions this configuration draws.
    pub fn sample_count(&self) -> usize {
        match self.samples {
            SampleCount::Hoeffding => {
                ((2.0 / self.delta).ln() / (2.0 * self.epsilon * self.epsilon)).ceil() as usize
            }
            SampleCount::Paper => (1.0 / (self.epsilon * self.epsilon)).ceil() as usize,
            SampleCount::Fixed(n) => n,
        }
        .max(1)
    }

    /// Checks the tolerances; every sampling entry point rejects a
    /// configuration that fails this before drawing anything.
    pub(crate) fn validate(&self) -> Result<(), MeasureError> {
        for v in [self.epsilon, self.delta] {
            if !(v > 0.0 && v < 1.0 + 1e-12) {
                return Err(MeasureError::BadTolerance { value: v });
            }
        }
        Ok(())
    }
}

/// Result of an AFPRAS run on a formula.
#[derive(Clone, Debug)]
pub struct AfprasOutcome {
    /// The estimate of `ν(φ)`.
    pub estimate: f64,
    /// Directions drawn.
    pub samples: usize,
    /// Positive (asymptotically satisfied) directions.
    pub hits: usize,
    /// Dimension of the sampled direction space.
    pub dimension: usize,
}

/// Estimates `ν(φ)` for a quantifier-free formula over the reals.
pub fn estimate_nu(phi: &QfFormula, opts: &AfprasOptions) -> Result<AfprasOutcome, MeasureError> {
    opts.validate()?;
    let compiled = CompiledFormula::compile(phi);
    Ok(estimate_nu_compiled(&compiled, opts))
}

/// Estimates `ν(φ)` for an already-compiled formula (the §9 pipeline
/// compiles once per candidate and reuses across ε values in benches).
pub fn estimate_nu_compiled(compiled: &CompiledFormula, opts: &AfprasOptions) -> AfprasOutcome {
    estimate_nu_compiled_many(&[compiled], opts).pop().expect("one outcome per formula")
}

/// Estimates `ν` for a batch of compiled formulas under one option set,
/// sharing direction generation between formulas that sample the same
/// number of coordinates — the "candidates sharing a template" layout
/// of the blocked kernel. Outcomes are returned in input order.
///
/// **Bit-pinning.** The per-formula direction stream is a pure function
/// of `(seed, worker stream, sampled dimension)`: two formulas with the
/// same sampled dimension would draw the *same* directions from their
/// own independent [`estimate_nu_compiled`] calls, coordinate for
/// coordinate. Sharing therefore changes nothing observable — each
/// group fills one SoA block per iteration and evaluates every member
/// formula on it, and every outcome is bit-identical to the
/// formula-at-a-time path (asserted by the
/// `shared_sampling_matches_per_formula_estimates` test and, end to
/// end, by the checked-in certainty baselines). What *does* change is
/// cost: the Gaussian sampling — the dominant term for workload-sized
/// formulas — is paid once per dimension group instead of once per
/// formula.
pub fn estimate_nu_compiled_many(
    formulas: &[&CompiledFormula],
    opts: &AfprasOptions,
) -> Vec<AfprasOutcome> {
    let m = opts.sample_count();
    let mut outcomes: Vec<Option<AfprasOutcome>> = vec![None; formulas.len()];

    // Group by the sampled dimension (`rows`): members consume the RNG
    // identically, so they can share blocks. BTreeMap for deterministic
    // group order (the order does not affect results — each group owns
    // fresh RNGs — but determinism everywhere keeps profiles stable).
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, compiled) in formulas.iter().enumerate() {
        let dim = compiled.dim();
        if dim == 0 {
            // Zero-dimensional formulas are decided, not sampled.
            let mut memo = compiled.new_memo();
            let truth = compiled.limit_truth(&[], &mut memo);
            outcomes[i] = Some(AfprasOutcome {
                estimate: if truth { 1.0 } else { 0.0 },
                samples: 0,
                hits: truth as usize,
                dimension: 0,
            });
            continue;
        }
        let rows = match opts.full_dimension {
            None => dim,
            Some(full) => full.max(dim),
        };
        groups.entry(rows).or_default().push(i);
    }

    for (rows, members) in &groups {
        let group: Vec<&CompiledFormula> = members.iter().map(|&i| formulas[i]).collect();
        let threads = opts.threads.max(1).min(m);
        let hits: Vec<usize> = if threads == 1 {
            shared_worker(&group, *rows, opts, 0, m)
        } else {
            let mut counts = vec![vec![0usize; group.len()]; threads];
            let chunk = m / threads;
            let rem = m % threads;
            std::thread::scope(|scope| {
                for (t, slot) in counts.iter_mut().enumerate() {
                    let quota = chunk + usize::from(t < rem);
                    let group = &group;
                    scope.spawn(move || {
                        *slot = shared_worker(group, *rows, opts, t as u64 + 1, quota);
                    });
                }
            });
            counts.into_iter().fold(vec![0usize; group.len()], |mut acc, c| {
                for (a, x) in acc.iter_mut().zip(c) {
                    *a += x;
                }
                acc
            })
        };
        for (&i, &h) in members.iter().zip(&hits) {
            outcomes[i] = Some(AfprasOutcome {
                estimate: h as f64 / m as f64,
                samples: m,
                hits: h,
                dimension: formulas[i].dim(),
            });
        }
    }

    outcomes.into_iter().map(|o| o.expect("every formula measured")).collect()
}

/// Directions per block in the worker hot loop. 64 lanes keep the SoA
/// block and the evaluator scratch comfortably in L1 for workload-sized
/// formulas while amortizing loop overhead; the value does not affect
/// results (the RNG is consumed direction-by-direction regardless of
/// how the quota is partitioned into blocks).
const DIRECTION_BLOCK: usize = 256;

/// The blocked worker: draws `quota` directions and counts asymptotic
/// satisfaction for a group of formulas with equal sampled dimension
/// `rows`. A structure-of-arrays block of directions is filled per
/// iteration (`fill_unit_sphere_block`) and evaluated lane-parallel
/// (`limit_truth_block`) by every member, so the Gaussian sampling cost
/// is amortized across the group. All buffers are allocated once per
/// worker — the loop itself is allocation-free. Returns per-formula hit
/// counts, in group order.
///
/// Bit-pinning: the block fill consumes the per-stream RNG
/// direction-by-direction in exactly the order the scalar
/// one-`Vec`-per-draw loop did, and the blocked evaluator is
/// lane-for-lane bit-identical to the scalar `limit_truth`, so hits
/// (and therefore every digest downstream) are unchanged for any
/// (seed, thread count, group composition).
///
/// Ablation (`full_dimension`): sample all |N_num(D)| coordinates, then
/// project. The projection of a uniform sphere vector onto a coordinate
/// subspace points in a uniform direction, so the estimate is identical
/// in distribution — only slower. In SoA layout the projection is the
/// first `dim` coordinate rows of the block, so it costs zero copies
/// (the old scalar path paid a `to_vec()` per sample here).
fn shared_worker(
    group: &[&CompiledFormula],
    rows: usize,
    opts: &AfprasOptions,
    stream: u64,
    quota: usize,
) -> Vec<usize> {
    // Distinct deterministic stream per worker.
    let mut rng =
        StdRng::seed_from_u64(opts.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream + 1)));
    let block = quota.clamp(1, DIRECTION_BLOCK);
    let mut soa = vec![0.0f64; rows * block];
    let mut scratches: Vec<_> = group.iter().map(|c| c.new_block_scratch(block)).collect();
    let mut hits = vec![0usize; group.len()];
    let mut remaining = quota;
    while remaining > 0 {
        let count = remaining.min(block);
        qarith_geometry::fill_unit_sphere_block(&mut rng, rows, count, &mut soa[..rows * count]);
        for ((compiled, scratch), h) in group.iter().zip(&mut scratches).zip(&mut hits) {
            *h += compiled.limit_truth_block(&soa[..compiled.dim() * count], count, scratch);
        }
        remaining -= count;
    }
    hits
}

/// Convenience wrapper producing a [`CertaintyEstimate`].
pub fn afpras_estimate(
    phi: &QfFormula,
    opts: &AfprasOptions,
) -> Result<CertaintyEstimate, MeasureError> {
    let out = estimate_nu(phi, opts)?;
    Ok(CertaintyEstimate {
        value: out.estimate,
        exact: None,
        method: Method::Afpras,
        epsilon: Some(opts.epsilon),
        delta: Some(opts.delta),
        samples: out.samples,
        dimension: out.dimension,
        cached: false,
        rewritten: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_constraints::{Atom, ConstraintOp, Polynomial, Var};
    use qarith_numeric::Rational;

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    #[test]
    fn sample_count_policies() {
        let mut o =
            AfprasOptions { samples: SampleCount::Paper, ..AfprasOptions::with_epsilon(0.1) };
        assert_eq!(o.sample_count(), 100);
        o.samples = SampleCount::Hoeffding;
        o.delta = 0.25;
        // ln(8)/(2·0.01) ≈ 103.97 → 104.
        assert_eq!(o.sample_count(), 104);
        o.samples = SampleCount::Fixed(7);
        assert_eq!(o.sample_count(), 7);
    }

    #[test]
    fn halfline_measures_one_half() {
        // φ: z0 > 0 ⇒ ν = 1/2.
        let phi = atom(z(0), ConstraintOp::Gt);
        let out = estimate_nu(&phi, &AfprasOptions::with_epsilon(0.02)).unwrap();
        assert!((out.estimate - 0.5).abs() < 0.03, "estimate {}", out.estimate);
        assert_eq!(out.dimension, 1);
    }

    #[test]
    fn quadrant_measures_one_quarter() {
        let phi = QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(1), ConstraintOp::Gt)]);
        let out = estimate_nu(&phi, &AfprasOptions::with_epsilon(0.02)).unwrap();
        assert!((out.estimate - 0.25).abs() < 0.03, "estimate {}", out.estimate);
    }

    #[test]
    fn constants_are_asymptotically_irrelevant() {
        // z0 > 10⁶ has the same ν as z0 > 0.
        let phi =
            atom(z(0) - Polynomial::constant(Rational::from_int(1_000_000)), ConstraintOp::Gt);
        let out = estimate_nu(&phi, &AfprasOptions::with_epsilon(0.02)).unwrap();
        assert!((out.estimate - 0.5).abs() < 0.03);
    }

    #[test]
    fn tautologies_and_contradictions() {
        let taut = QfFormula::or([atom(z(0), ConstraintOp::Ge), atom(z(0), ConstraintOp::Lt)]);
        let out = estimate_nu(&taut, &AfprasOptions::with_epsilon(0.05)).unwrap();
        assert_eq!(out.estimate, 1.0);
        let contra = QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(0), ConstraintOp::Lt)]);
        let out = estimate_nu(&contra, &AfprasOptions::with_epsilon(0.05)).unwrap();
        assert_eq!(out.estimate, 0.0);
    }

    #[test]
    fn equalities_have_measure_zero() {
        let phi = atom(z(0) - z(1), ConstraintOp::Eq);
        let out = estimate_nu(&phi, &AfprasOptions::with_epsilon(0.05)).unwrap();
        assert_eq!(out.estimate, 0.0);
    }

    #[test]
    fn zero_dimensional_formulas() {
        let t = QfFormula::True;
        assert_eq!(estimate_nu(&t, &AfprasOptions::default()).unwrap().estimate, 1.0);
        let f = QfFormula::False;
        assert_eq!(estimate_nu(&f, &AfprasOptions::default()).unwrap().estimate, 0.0);
    }

    #[test]
    fn parallel_matches_shape() {
        let phi =
            QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(1) - z(0), ConstraintOp::Gt)]);
        let mut opts = AfprasOptions::with_epsilon(0.02);
        opts.threads = 4;
        let out = estimate_nu(&phi, &opts).unwrap();
        // P(z0 > 0 ∧ z1 > z0) = 1/2 · 1/2 … no: for iid symmetric
        // directions it is the fraction of orderings with 0 < z0 < z1 =
        // 1/2 (sign of z0) × P(z1 > z0 | z0 > 0)… exact value: cells
        // (z0,z1) with z0 > 0, z1 > z0: probability 1/(2²·0!·2!)·|{π}| =
        // one cell of weight 1/8: ν = 1/8.
        assert!((out.estimate - 0.125).abs() < 0.03, "estimate {}", out.estimate);
    }

    #[test]
    fn full_dimension_ablation_agrees() {
        let phi = QfFormula::and([atom(z(3), ConstraintOp::Gt), atom(z(9), ConstraintOp::Lt)]);
        let mut fast = AfprasOptions::with_epsilon(0.02);
        fast.seed = 99;
        let mut slow = fast.clone();
        slow.full_dimension = Some(50);
        let a = estimate_nu(&phi, &fast).unwrap();
        let b = estimate_nu(&phi, &slow).unwrap();
        assert!((a.estimate - 0.25).abs() < 0.03, "fast {}", a.estimate);
        assert!((b.estimate - 0.25).abs() < 0.03, "slow {}", b.estimate);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let phi = atom(z(0) * z(0) - z(1), ConstraintOp::Lt);
        let opts = AfprasOptions::with_epsilon(0.05);
        let a = estimate_nu(&phi, &opts).unwrap();
        let b = estimate_nu(&phi, &opts).unwrap();
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.hits, b.hits);
    }

    #[test]
    fn nonlinear_formula_sanity() {
        // z0² ≤ z1: asymptotically along direction (a0, a1) the z0² term
        // dominates unless a0 = 0 ⇒ satisfied only on the measure-zero
        // set a0 = 0 (with a1 > 0) ⇒ ν = 0.
        let phi = atom(z(0) * z(0) - z(1), ConstraintOp::Le);
        let out = estimate_nu(&phi, &AfprasOptions::with_epsilon(0.03)).unwrap();
        assert_eq!(out.estimate, 0.0);
    }

    #[test]
    fn bad_tolerances_rejected() {
        let phi = QfFormula::True;
        for eps in [0.0, -0.3, 1.5] {
            let o = AfprasOptions { epsilon: eps, ..AfprasOptions::default() };
            assert!(matches!(estimate_nu(&phi, &o), Err(MeasureError::BadTolerance { .. })));
        }
    }

    /// The pre-blocking worker, kept verbatim as a reference: one `Vec`
    /// per draw, scalar evaluation, `to_vec()` projection. The blocked
    /// worker must reproduce its hit count bit-for-bit on every stream.
    fn scalar_reference_worker(
        compiled: &CompiledFormula,
        opts: &AfprasOptions,
        stream: u64,
        quota: usize,
    ) -> usize {
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            opts.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream + 1)),
        );
        let dim = compiled.dim();
        let mut memo = compiled.new_memo();
        let mut hits = 0usize;
        match opts.full_dimension {
            None => {
                for _ in 0..quota {
                    let dir = qarith_geometry::sample_unit_sphere(&mut rng, dim);
                    if compiled.limit_truth(&dir, &mut memo) {
                        hits += 1;
                    }
                }
            }
            Some(full) => {
                let full = full.max(dim);
                for _ in 0..quota {
                    let full_dir = qarith_geometry::sample_unit_sphere(&mut rng, full);
                    let dir: Vec<f64> = full_dir[..dim].to_vec();
                    if compiled.limit_truth(&dir, &mut memo) {
                        hits += 1;
                    }
                }
            }
        }
        hits
    }

    #[test]
    fn shared_sampling_matches_per_formula_estimates() {
        // Mixed dimensions (1, 2, 3, and a repeat of 2), plus a decided
        // zero-dimensional formula: the batched entry point must return
        // exactly what formula-at-a-time calls return, for any thread
        // count and for the full-dimension ablation.
        let formulas = [
            atom(z(0), ConstraintOp::Gt),
            QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(1) - z(0), ConstraintOp::Gt)]),
            QfFormula::or([
                atom(z(0) * z(0) - z(1), ConstraintOp::Lt),
                atom(z(1) * z(2), ConstraintOp::Ge),
            ]),
            QfFormula::and([atom(z(3), ConstraintOp::Gt), atom(z(7), ConstraintOp::Lt)]),
            QfFormula::True,
        ];
        let compiled: Vec<CompiledFormula> =
            formulas.iter().map(CompiledFormula::compile).collect();
        let refs: Vec<&CompiledFormula> = compiled.iter().collect();
        for threads in [1usize, 4] {
            for full_dimension in [None, Some(12)] {
                let opts = AfprasOptions {
                    epsilon: 0.05,
                    seed: 0xFEED_BEEF,
                    threads,
                    full_dimension,
                    ..AfprasOptions::default()
                };
                let batched = estimate_nu_compiled_many(&refs, &opts);
                for (c, out) in refs.iter().zip(&batched) {
                    let solo = estimate_nu_compiled(c, &opts);
                    assert_eq!(out.hits, solo.hits, "threads={threads} full={full_dimension:?}");
                    assert_eq!(out.estimate.to_bits(), solo.estimate.to_bits());
                    assert_eq!(out.samples, solo.samples);
                    assert_eq!(out.dimension, solo.dimension);
                }
            }
        }
    }

    #[test]
    fn blocked_worker_matches_scalar_reference_bit_for_bit() {
        let formulas = [
            atom(z(0), ConstraintOp::Gt),
            QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(1) - z(0), ConstraintOp::Gt)]),
            QfFormula::or([
                atom(z(0) * z(0) - z(1), ConstraintOp::Lt),
                atom(z(1) * z(2), ConstraintOp::Ge),
            ]),
        ];
        for phi in &formulas {
            let compiled = CompiledFormula::compile(phi);
            for full_dimension in [None, Some(12)] {
                let opts =
                    AfprasOptions { seed: 0xFEED_BEEF, full_dimension, ..AfprasOptions::default() };
                // Quotas straddling the block size: sub-block, exact
                // multiples, and a remainder tail.
                let rows = match full_dimension {
                    None => compiled.dim(),
                    Some(full) => full.max(compiled.dim()),
                };
                for quota in [1usize, 3, 63, 64, 65, 200] {
                    for stream in [0u64, 1, 5] {
                        assert_eq!(
                            shared_worker(&[&compiled], rows, &opts, stream, quota)[0],
                            scalar_reference_worker(&compiled, &opts, stream, quota),
                            "phi={phi:?} quota={quota} stream={stream} full={full_dimension:?}"
                        );
                    }
                }
            }
        }
    }
}
