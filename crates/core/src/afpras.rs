//! The additive FPRAS of Theorem 8.1.
//!
//! `ν(φ)` equals the probability that a direction `a`, uniform on the
//! unit sphere, satisfies `lim_{k→∞} f_{φ,a}(k) = 1` (Lemma 8.3; sphere
//! vs ball is immaterial since the limit only depends on the direction).
//! The scheme samples `m` directions, tests the limit with the
//! polynomial-time procedure of Lemma 8.4 (leading-coefficient analysis,
//! implemented by [`CompiledFormula`]), and returns the sample mean. By
//! Hoeffding, `m ≥ ln(2/δ)/(2ε²)` gives `|est − ν(φ)| < ε` with
//! probability `≥ 1 − δ`; the paper's `m ≥ ε⁻²` with δ = 1/4 is available
//! as a compatibility switch.
//!
//! Two of the paper's §9 implementation notes are reproduced faithfully:
//!
//! * **partial-vector sampling** — only the coordinates of nulls that
//!   occur in `φ` are sampled (the projection of a uniform sphere vector
//!   onto a coordinate subspace is uniform on the sub-sphere after
//!   rescaling, and the asymptotic test ignores scale), which is the
//!   optimization the paper credits for its practical speed;
//! * the Gaussian-normalization sampler of \[8\].
//!
//! Sampling is optionally parallelized across threads with
//! `std::thread::scope`; each worker owns a deterministically-derived
//! RNG, so results are reproducible for a fixed seed and thread count.

use qarith_constraints::asymptotic::CompiledFormula;
use qarith_constraints::QfFormula;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::MeasureError;
use crate::estimate::{CertaintyEstimate, Method};

/// How many directions to draw.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SampleCount {
    /// Hoeffding-calibrated: `m = ⌈ln(2/δ) / (2ε²)⌉`.
    Hoeffding,
    /// The paper's §8 prescription: `m = ⌈ε⁻²⌉` (with δ fixed at 1/4).
    Paper,
    /// An explicit sample count (ablation experiments).
    Fixed(usize),
}

/// Options for the additive scheme.
#[derive(Clone, Debug)]
pub struct AfprasOptions {
    /// Additive error ε ∈ (0, 1].
    pub epsilon: f64,
    /// Failure probability δ ∈ (0, 1).
    pub delta: f64,
    /// Sample-count policy.
    pub samples: SampleCount,
    /// RNG seed (runs are deterministic given seed and thread count).
    pub seed: u64,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Ablation switch: when `Some(n)`, sample full `n`-dimensional
    /// direction vectors and project onto the formula's coordinates —
    /// the unoptimized strategy the paper's §9 explicitly moved away
    /// from. `None` (default) samples only the needed coordinates.
    pub full_dimension: Option<usize>,
}

impl Default for AfprasOptions {
    fn default() -> Self {
        AfprasOptions {
            epsilon: 0.05,
            delta: 0.25,
            samples: SampleCount::Hoeffding,
            seed: 0xA1B2_C3D4,
            threads: 1,
            full_dimension: None,
        }
    }
}

impl AfprasOptions {
    /// Convenience: a given ε with the remaining defaults.
    pub fn with_epsilon(epsilon: f64) -> AfprasOptions {
        AfprasOptions { epsilon, ..AfprasOptions::default() }
    }

    /// The number of directions this configuration draws.
    pub fn sample_count(&self) -> usize {
        match self.samples {
            SampleCount::Hoeffding => {
                ((2.0 / self.delta).ln() / (2.0 * self.epsilon * self.epsilon)).ceil() as usize
            }
            SampleCount::Paper => (1.0 / (self.epsilon * self.epsilon)).ceil() as usize,
            SampleCount::Fixed(n) => n,
        }
        .max(1)
    }

    fn validate(&self) -> Result<(), MeasureError> {
        for v in [self.epsilon, self.delta] {
            if !(v > 0.0 && v < 1.0 + 1e-12) {
                return Err(MeasureError::BadTolerance { value: v });
            }
        }
        Ok(())
    }
}

/// Result of an AFPRAS run on a formula.
#[derive(Clone, Debug)]
pub struct AfprasOutcome {
    /// The estimate of `ν(φ)`.
    pub estimate: f64,
    /// Directions drawn.
    pub samples: usize,
    /// Positive (asymptotically satisfied) directions.
    pub hits: usize,
    /// Dimension of the sampled direction space.
    pub dimension: usize,
}

/// Estimates `ν(φ)` for a quantifier-free formula over the reals.
pub fn estimate_nu(phi: &QfFormula, opts: &AfprasOptions) -> Result<AfprasOutcome, MeasureError> {
    opts.validate()?;
    let compiled = CompiledFormula::compile(phi);
    Ok(estimate_nu_compiled(&compiled, opts))
}

/// Estimates `ν(φ)` for an already-compiled formula (the §9 pipeline
/// compiles once per candidate and reuses across ε values in benches).
pub fn estimate_nu_compiled(compiled: &CompiledFormula, opts: &AfprasOptions) -> AfprasOutcome {
    let m = opts.sample_count();
    let dim = compiled.dim();

    // Zero-dimensional formulas are decided, not sampled.
    if dim == 0 {
        let mut memo = compiled.new_memo();
        let truth = compiled.limit_truth(&[], &mut memo);
        return AfprasOutcome {
            estimate: if truth { 1.0 } else { 0.0 },
            samples: 0,
            hits: truth as usize,
            dimension: 0,
        };
    }

    let threads = opts.threads.max(1).min(m);
    let hits = if threads == 1 {
        worker(compiled, opts, 0, m)
    } else {
        let mut counts = vec![0usize; threads];
        let chunk = m / threads;
        let rem = m % threads;
        std::thread::scope(|scope| {
            for (t, slot) in counts.iter_mut().enumerate() {
                let quota = chunk + usize::from(t < rem);
                scope.spawn(move || {
                    *slot = worker(compiled, opts, t as u64 + 1, quota);
                });
            }
        });
        counts.iter().sum()
    };

    AfprasOutcome { estimate: hits as f64 / m as f64, samples: m, hits, dimension: dim }
}

/// Draws `quota` directions and counts asymptotic satisfaction.
fn worker(compiled: &CompiledFormula, opts: &AfprasOptions, stream: u64, quota: usize) -> usize {
    // Distinct deterministic stream per worker.
    let mut rng =
        StdRng::seed_from_u64(opts.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream + 1)));
    let dim = compiled.dim();
    let mut memo = compiled.new_memo();
    let mut hits = 0usize;
    match opts.full_dimension {
        None => {
            // Partial-vector sampling (§9 optimization): only the
            // formula's own coordinates.
            for _ in 0..quota {
                let dir = qarith_geometry::sample_unit_sphere(&mut rng, dim);
                if compiled.limit_truth(&dir, &mut memo) {
                    hits += 1;
                }
            }
        }
        Some(full) => {
            // Ablation: sample all |N_num(D)| coordinates, then project.
            // The projection of a uniform sphere vector onto a coordinate
            // subspace points in a uniform direction, so the estimate is
            // identical in distribution — only slower.
            let full = full.max(dim);
            for _ in 0..quota {
                let full_dir = qarith_geometry::sample_unit_sphere(&mut rng, full);
                let dir: Vec<f64> = full_dir[..dim].to_vec();
                if compiled.limit_truth(&dir, &mut memo) {
                    hits += 1;
                }
            }
        }
    }
    hits
}

/// Convenience wrapper producing a [`CertaintyEstimate`].
pub fn afpras_estimate(
    phi: &QfFormula,
    opts: &AfprasOptions,
) -> Result<CertaintyEstimate, MeasureError> {
    let out = estimate_nu(phi, opts)?;
    Ok(CertaintyEstimate {
        value: out.estimate,
        exact: None,
        method: Method::Afpras,
        epsilon: Some(opts.epsilon),
        delta: Some(opts.delta),
        samples: out.samples,
        dimension: out.dimension,
        cached: false,
        rewritten: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_constraints::{Atom, ConstraintOp, Polynomial, Var};
    use qarith_numeric::Rational;

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    #[test]
    fn sample_count_policies() {
        let mut o =
            AfprasOptions { samples: SampleCount::Paper, ..AfprasOptions::with_epsilon(0.1) };
        assert_eq!(o.sample_count(), 100);
        o.samples = SampleCount::Hoeffding;
        o.delta = 0.25;
        // ln(8)/(2·0.01) ≈ 103.97 → 104.
        assert_eq!(o.sample_count(), 104);
        o.samples = SampleCount::Fixed(7);
        assert_eq!(o.sample_count(), 7);
    }

    #[test]
    fn halfline_measures_one_half() {
        // φ: z0 > 0 ⇒ ν = 1/2.
        let phi = atom(z(0), ConstraintOp::Gt);
        let out = estimate_nu(&phi, &AfprasOptions::with_epsilon(0.02)).unwrap();
        assert!((out.estimate - 0.5).abs() < 0.03, "estimate {}", out.estimate);
        assert_eq!(out.dimension, 1);
    }

    #[test]
    fn quadrant_measures_one_quarter() {
        let phi = QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(1), ConstraintOp::Gt)]);
        let out = estimate_nu(&phi, &AfprasOptions::with_epsilon(0.02)).unwrap();
        assert!((out.estimate - 0.25).abs() < 0.03, "estimate {}", out.estimate);
    }

    #[test]
    fn constants_are_asymptotically_irrelevant() {
        // z0 > 10⁶ has the same ν as z0 > 0.
        let phi =
            atom(z(0) - Polynomial::constant(Rational::from_int(1_000_000)), ConstraintOp::Gt);
        let out = estimate_nu(&phi, &AfprasOptions::with_epsilon(0.02)).unwrap();
        assert!((out.estimate - 0.5).abs() < 0.03);
    }

    #[test]
    fn tautologies_and_contradictions() {
        let taut = QfFormula::or([atom(z(0), ConstraintOp::Ge), atom(z(0), ConstraintOp::Lt)]);
        let out = estimate_nu(&taut, &AfprasOptions::with_epsilon(0.05)).unwrap();
        assert_eq!(out.estimate, 1.0);
        let contra = QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(0), ConstraintOp::Lt)]);
        let out = estimate_nu(&contra, &AfprasOptions::with_epsilon(0.05)).unwrap();
        assert_eq!(out.estimate, 0.0);
    }

    #[test]
    fn equalities_have_measure_zero() {
        let phi = atom(z(0) - z(1), ConstraintOp::Eq);
        let out = estimate_nu(&phi, &AfprasOptions::with_epsilon(0.05)).unwrap();
        assert_eq!(out.estimate, 0.0);
    }

    #[test]
    fn zero_dimensional_formulas() {
        let t = QfFormula::True;
        assert_eq!(estimate_nu(&t, &AfprasOptions::default()).unwrap().estimate, 1.0);
        let f = QfFormula::False;
        assert_eq!(estimate_nu(&f, &AfprasOptions::default()).unwrap().estimate, 0.0);
    }

    #[test]
    fn parallel_matches_shape() {
        let phi =
            QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(1) - z(0), ConstraintOp::Gt)]);
        let mut opts = AfprasOptions::with_epsilon(0.02);
        opts.threads = 4;
        let out = estimate_nu(&phi, &opts).unwrap();
        // P(z0 > 0 ∧ z1 > z0) = 1/2 · 1/2 … no: for iid symmetric
        // directions it is the fraction of orderings with 0 < z0 < z1 =
        // 1/2 (sign of z0) × P(z1 > z0 | z0 > 0)… exact value: cells
        // (z0,z1) with z0 > 0, z1 > z0: probability 1/(2²·0!·2!)·|{π}| =
        // one cell of weight 1/8: ν = 1/8.
        assert!((out.estimate - 0.125).abs() < 0.03, "estimate {}", out.estimate);
    }

    #[test]
    fn full_dimension_ablation_agrees() {
        let phi = QfFormula::and([atom(z(3), ConstraintOp::Gt), atom(z(9), ConstraintOp::Lt)]);
        let mut fast = AfprasOptions::with_epsilon(0.02);
        fast.seed = 99;
        let mut slow = fast.clone();
        slow.full_dimension = Some(50);
        let a = estimate_nu(&phi, &fast).unwrap();
        let b = estimate_nu(&phi, &slow).unwrap();
        assert!((a.estimate - 0.25).abs() < 0.03, "fast {}", a.estimate);
        assert!((b.estimate - 0.25).abs() < 0.03, "slow {}", b.estimate);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let phi = atom(z(0) * z(0) - z(1), ConstraintOp::Lt);
        let opts = AfprasOptions::with_epsilon(0.05);
        let a = estimate_nu(&phi, &opts).unwrap();
        let b = estimate_nu(&phi, &opts).unwrap();
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.hits, b.hits);
    }

    #[test]
    fn nonlinear_formula_sanity() {
        // z0² ≤ z1: asymptotically along direction (a0, a1) the z0² term
        // dominates unless a0 = 0 ⇒ satisfied only on the measure-zero
        // set a0 = 0 (with a1 > 0) ⇒ ν = 0.
        let phi = atom(z(0) * z(0) - z(1), ConstraintOp::Le);
        let out = estimate_nu(&phi, &AfprasOptions::with_epsilon(0.03)).unwrap();
        assert_eq!(out.estimate, 0.0);
    }

    #[test]
    fn bad_tolerances_rejected() {
        let phi = QfFormula::True;
        for eps in [0.0, -0.3, 1.5] {
            let o = AfprasOptions { epsilon: eps, ..AfprasOptions::default() };
            assert!(matches!(estimate_nu(&phi, &o), Err(MeasureError::BadTolerance { .. })));
        }
    }
}
