//! Decomposed measurement: the rewrite pipeline's executor.
//!
//! [`measure_rewritten`] is what `CertaintyEngine::nu` runs when
//! `MeasureOptions::rewrite.enabled` is set. It rewrites the formula
//! through `qarith-rewrite` (simplification + independence
//! decomposition), measures each variable-disjoint factor separately —
//! routing factors to the exact evaluators wherever they apply, which
//! the decomposition makes far more frequent — and multiplies, which is
//! exact because the factors' asymptotic events are independent under
//! the uniform direction measure (see `qarith_rewrite::decompose`).
//!
//! **Error accounting.** Exactly-evaluated factors contribute zero
//! error, and multiplying an estimate by exact constants in `[0, 1]`
//! never grows its error, so the full ε/δ budget goes to whatever still
//! needs sampling. Under the default [`FactorBudget::Residual`] policy
//! the sampled factors are rejoined and measured once with the full
//! budget: `|ν̂ᵣ·∏νₑ − νᵣ·∏νₑ| = ∏νₑ·|ν̂ᵣ − νᵣ| ≤ ε`, and the run draws
//! no more directions than the unrewritten one (over a no-larger
//! formula in a no-larger direction space). [`FactorBudget::Split`]
//! instead samples each of the `k` residual factors with an `ε/k`
//! additive budget and `δ/k` failure probability: since every
//! `νᵢ, ν̂ᵢ ∈ [0, 1]`, telescoping gives
//! `|∏ν̂ᵢ − ∏νᵢ| ≤ Σ|ν̂ᵢ − νᵢ| ≤ ε`, with total failure probability
//! ≤ δ by the union bound. For the multiplicative FPRAS only the
//! residual policy is used: the exact factors are relative-error-free,
//! so the joint residual keeps the full relative budget.
//!
//! **Determinism.** Every factor measurement is a deterministic
//! function of (factor, options) — exact closed forms, or Monte-Carlo
//! with the configured seed — and the combination multiplies the factor
//! values in ascending `f64` order, so the product does not depend on
//! the (renaming-sensitive) factor discovery order. Estimates are
//! therefore reproducible and safe to memoize in the ν-cache under a
//! fingerprint that includes the [`qarith_rewrite::RewriteOptions`].

use qarith_constraints::QfFormula;
use qarith_numeric::Rational;
use qarith_rewrite::{Combination, FactorBudget, RewriteOutcome, Rewriter};

use crate::afpras::{afpras_estimate, AfprasOptions};
use crate::error::MeasureError;
use crate::estimate::{CertaintyEstimate, Method};
use crate::exact::try_exact_extended;
use crate::fpras::fpras_estimate;
use crate::pipeline::{MeasureOptions, MethodChoice};

/// Per-formula accounting of one rewritten measurement, aggregated into
/// `BatchStats::rewrite` by the batch engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RewriteTrace {
    /// Variable-disjoint factors the formula split into (0 for
    /// constants, 1 when no decomposition applied).
    pub factors: usize,
    /// Factors measured by an exact evaluator.
    pub exact_factors: usize,
    /// Distinct variables before rewriting.
    pub dim_before: usize,
    /// Distinct variables after simplification (= Σ factor dimensions).
    pub dim_after: usize,
}

/// Aggregate rewrite accounting over a batch (freshly measured groups
/// only — ν-cache hits skip measurement and therefore leave no trace).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Groups measured through the rewrite pipeline.
    pub groups: usize,
    /// Groups that decomposed into ≥ 2 factors.
    pub factored: usize,
    /// Total factors across those groups.
    pub factors: usize,
    /// Factors routed to an exact evaluator.
    pub exact_factors: usize,
    /// Σ pre-rewrite dimensions.
    pub dim_before: usize,
    /// Σ post-rewrite dimensions.
    pub dim_after: usize,
}

impl RewriteStats {
    /// Folds one formula's trace into the aggregate.
    pub fn absorb(&mut self, trace: &RewriteTrace) {
        self.groups += 1;
        if trace.factors >= 2 {
            self.factored += 1;
        }
        self.factors += trace.factors;
        self.exact_factors += trace.exact_factors;
        self.dim_before += trace.dim_before;
        self.dim_after += trace.dim_after;
    }

    /// The counters as stable `(name, value)` pairs, in declaration
    /// order — the machine-readable export the bench suite serializes
    /// into `BENCH_*.json`. Names are part of the JSON schema: renaming
    /// one is a baseline-breaking change.
    pub fn as_pairs(&self) -> [(&'static str, u64); 6] {
        [
            ("groups", self.groups as u64),
            ("factored", self.factored as u64),
            ("factors", self.factors as u64),
            ("exact_factors", self.exact_factors as u64),
            ("dim_before", self.dim_before as u64),
            ("dim_after", self.dim_after as u64),
        ]
    }
}

/// Measures `ν(φ)` through the rewrite pipeline: simplify, decompose,
/// route each factor (exact where possible), multiply. See the module
/// docs for the error accounting and determinism arguments.
pub fn measure_rewritten(
    phi: &QfFormula,
    options: &MeasureOptions,
) -> Result<(CertaintyEstimate, RewriteTrace), MeasureError> {
    measure_prepared(&Rewriter::new(options.rewrite).rewrite(phi), options)
}

/// [`measure_rewritten`] for an already-rewritten formula — the batch
/// engine prepares the [`RewriteOutcome`] once per canonical class
/// (while building the group key) and measures from it directly, so the
/// pass pipeline never runs twice on the same formula.
pub fn measure_prepared(
    out: &RewriteOutcome,
    options: &MeasureOptions,
) -> Result<(CertaintyEstimate, RewriteTrace), MeasureError> {
    let combination = out.decomposition.combination;
    let factors = &out.decomposition.factors;
    let trace = RewriteTrace {
        factors: factors.len(),
        exact_factors: 0,
        dim_before: out.dim_before,
        dim_after: out.dim_after,
    };

    // Constants are decided, not measured.
    if factors.is_empty() {
        let truth = matches!(out.formula, QfFormula::True);
        let mut est = CertaintyEstimate::exact_rational(
            if truth { Rational::ONE } else { Rational::ZERO },
            0,
        );
        est.rewritten = true;
        return Ok((est, trace));
    }

    // Route: exact evaluators per factor, the rest into the residual.
    let mut trace = trace;
    let mut parts: Vec<CertaintyEstimate> = Vec::with_capacity(factors.len());
    let mut residual: Vec<&QfFormula> = Vec::new();
    for factor in factors {
        match try_exact_extended(factor, options.exact_order_limit) {
            Some(est) => {
                trace.exact_factors += 1;
                parts.push(est);
            }
            None => residual.push(factor),
        }
    }

    // Measure the residual under the configured scheme and budget. The
    // rejoin connective matches the decomposition root, so the joint
    // residual is exactly the undecomposed remainder.
    if !residual.is_empty() {
        let rejoin = |fs: &[&QfFormula]| {
            let owned = fs.iter().map(|f| (*f).clone());
            match combination {
                Combination::Product => QfFormula::and(owned),
                Combination::DualProduct => QfFormula::or(owned),
            }
        };
        match options.method {
            MethodChoice::ExactOnly => {
                return Err(MeasureError::ExactUnavailable {
                    reason: "a factor is not order/2-D-linear and has dimension > 1",
                });
            }
            MethodChoice::Fpras => {
                // Joint residual, full multiplicative budget: the exact
                // factors are relative-error-free, and for the dual rule
                // `1 − (1−ν̂ᵣ)·∏(1−νₑ)` the additive residual error
                // `ε·νᵣ·∏(1−νₑ)` is bounded by ε times the true value.
                parts.push(fpras_estimate(&rejoin(&residual), &options.fpras)?);
            }
            MethodChoice::Auto | MethodChoice::Afpras => match options.rewrite.budget {
                FactorBudget::Residual => {
                    parts.push(afpras_estimate(&rejoin(&residual), &options.afpras)?);
                }
                FactorBudget::Split => {
                    let k = residual.len() as f64;
                    let split = AfprasOptions {
                        epsilon: options.afpras.epsilon / k,
                        delta: options.afpras.delta / k,
                        ..options.afpras.clone()
                    };
                    for factor in residual {
                        parts.push(afpras_estimate(factor, &split)?);
                    }
                }
            },
        }
    }

    Ok((combine(&parts, combination, options), trace))
}

/// Combines factor estimates into one [`CertaintyEstimate`]: a product
/// for conjunction factors, a complement product for disjunction
/// factors.
fn combine(
    parts: &[CertaintyEstimate],
    combination: Combination,
    options: &MeasureOptions,
) -> CertaintyEstimate {
    // A single part needs no combination at all — pass it through (this
    // also keeps exact single-factor values bit-identical to their
    // evaluator's output, e.g. across `1 − (1 − ν)` double rounding).
    if let [single] = parts {
        let mut est = single.clone();
        est.rewritten = true;
        return est;
    }

    // Exact rational combination when every factor has one (degrading to
    // the f64 path on the astronomically unlikely i128 overflow).
    let exact = match combination {
        Combination::Product => parts.iter().try_fold(Rational::ONE, |acc, p| {
            p.exact.as_ref().and_then(|r| acc.checked_mul(r).ok())
        }),
        Combination::DualProduct => parts
            .iter()
            .try_fold(Rational::ONE, |acc, p| {
                p.exact.as_ref().and_then(|r| acc.checked_mul(&(Rational::ONE - *r)).ok())
            })
            .map(|complement| Rational::ONE - complement),
    };

    // Ascending-order multiplication: f64 products are order-sensitive,
    // and factor discovery order is not canonical under renaming.
    let mut values: Vec<f64> = match combination {
        Combination::Product => parts.iter().map(|p| p.value).collect(),
        Combination::DualProduct => parts.iter().map(|p| 1.0 - p.value).collect(),
    };
    values.sort_unstable_by(f64::total_cmp);
    let product: f64 = values.into_iter().product();
    let value = match (&exact, combination) {
        (Some(r), _) => r.to_f64(),
        (None, Combination::Product) => product,
        (None, Combination::DualProduct) => 1.0 - product,
    };

    let sampled = parts.iter().find(|p| p.method != Method::Exact);
    let mut est = CertaintyEstimate {
        value,
        exact,
        method: match sampled {
            None => Method::Exact,
            Some(p) => p.method,
        },
        // The *total* guaranteed budgets, not the per-factor slices.
        epsilon: sampled.and_then(|p| p.epsilon).map(|_| match options.method {
            MethodChoice::Fpras => options.fpras.epsilon,
            _ => options.afpras.epsilon,
        }),
        delta: sampled.and_then(|p| p.delta).map(|_| match options.method {
            MethodChoice::Fpras => options.fpras.delta,
            _ => options.afpras.delta,
        }),
        samples: parts.iter().map(|p| p.samples).sum(),
        dimension: parts.iter().map(|p| p.dimension).sum(),
        cached: false,
        rewritten: true,
    };
    if est.exact.is_none() {
        // Factor values are in [0, 1] but a float product can round a
        // hair outside.
        est.value = est.value.clamp(0.0, 1.0);
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_constraints::{Atom, ConstraintOp, Polynomial, Var};
    use qarith_rewrite::RewriteOptions;

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    fn rewritten_options() -> MeasureOptions {
        MeasureOptions { rewrite: RewriteOptions::full(), ..MeasureOptions::default() }
    }

    #[test]
    fn product_of_exact_halves() {
        // (z0 > 0) ∧ (z1 > 0) ∧ (z2 > 0): three 1-D factors, ν = 1/8.
        let f = QfFormula::and([
            atom(z(0), ConstraintOp::Gt),
            atom(z(1), ConstraintOp::Gt),
            atom(z(2), ConstraintOp::Gt),
        ]);
        let (est, trace) = measure_rewritten(&f, &rewritten_options()).unwrap();
        assert_eq!(est.exact, Some(Rational::new(1, 8)));
        assert_eq!(est.method, Method::Exact);
        assert_eq!(est.samples, 0);
        assert!(est.rewritten);
        assert_eq!(trace.factors, 3);
        assert_eq!(trace.exact_factors, 3);
        assert_eq!(trace.dim_after, 3);
    }

    #[test]
    fn dual_product_on_disjoint_disjunctions() {
        // (z0 > 0) ∨ (z1 > 0): ν = 1 − (1 − ½)(1 − ½) = 3/4, exactly.
        let f = QfFormula::or([atom(z(0), ConstraintOp::Gt), atom(z(1), ConstraintOp::Gt)]);
        let (est, trace) = measure_rewritten(&f, &rewritten_options()).unwrap();
        assert_eq!(est.exact, Some(Rational::new(3, 4)));
        assert_eq!(est.method, Method::Exact);
        assert_eq!(trace.factors, 2);
        assert_eq!(trace.exact_factors, 2);
        // Three-way: 1 − (1/2)³ = 7/8.
        let g = QfFormula::or([
            atom(z(0), ConstraintOp::Gt),
            atom(z(1), ConstraintOp::Gt),
            atom(z(2), ConstraintOp::Gt),
        ]);
        let (est, _) = measure_rewritten(&g, &rewritten_options()).unwrap();
        assert_eq!(est.exact, Some(Rational::new(7, 8)));
    }

    #[test]
    fn trivial_atoms_fold_before_routing() {
        // The quadratic conjunct is a.e. true; what remains is exact 1-D.
        let f = QfFormula::and([
            atom(z(0) * z(0) + z(1) * z(1), ConstraintOp::Gt),
            atom(z(2), ConstraintOp::Lt),
        ]);
        let (est, trace) = measure_rewritten(&f, &rewritten_options()).unwrap();
        assert_eq!(est.exact, Some(Rational::new(1, 2)));
        assert_eq!(trace.dim_before, 3);
        assert_eq!(trace.dim_after, 1);
    }

    #[test]
    fn constants_yield_exact_zero_or_one() {
        // A complement pair annihilates to the constant `false` — no
        // factors to measure at all.
        let contradiction =
            QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(0), ConstraintOp::Le)]);
        let (est, trace) = measure_rewritten(&contradiction, &rewritten_options()).unwrap();
        assert_eq!(est.exact, Some(Rational::ZERO));
        assert_eq!(trace.factors, 0);
        // z0 > 0 ∧ z0 < 0 is not a complement pair (complement of > is
        // ≤); it survives normalization and the 1-D exact evaluator
        // still lands on zero.
        let near = QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(0), ConstraintOp::Lt)]);
        let (est, trace) = measure_rewritten(&near, &rewritten_options()).unwrap();
        assert_eq!(est.exact, Some(Rational::ZERO));
        assert_eq!(trace.factors, 1);
        assert_eq!(trace.exact_factors, 1);
    }

    #[test]
    fn split_budget_telescopes() {
        // Two sampled 3-D factors under the Split policy: each runs at
        // ε/2, so the product carries the full-ε additive guarantee.
        // (Multi-term quadratic tops keep the factors out of reach of
        // every exact evaluator, including the spherical one.)
        let cross = |a: u32, b: u32, c: u32| {
            QfFormula::or([
                QfFormula::and([
                    atom(z(a) * z(a) + z(a) * z(b), ConstraintOp::Gt),
                    atom(z(c), ConstraintOp::Lt),
                ]),
                atom(z(a) - z(c), ConstraintOp::Gt),
            ])
        };
        let f = QfFormula::and([cross(0, 1, 2), cross(3, 4, 5)]);
        let mut options = rewritten_options();
        options.rewrite.budget = FactorBudget::Split;
        options.method = MethodChoice::Afpras;
        options.afpras.epsilon = 0.04;
        let (est, trace) = measure_rewritten(&f, &options).unwrap();
        assert_eq!(trace.factors, 2);
        assert_eq!(trace.exact_factors, 0);
        assert_eq!(est.epsilon, Some(0.04), "reported ε is the total budget");
        assert!(est.samples > 0);
        // Cross-check against the residual policy (same total guarantee).
        options.rewrite.budget = FactorBudget::Residual;
        let (joint, _) = measure_rewritten(&f, &options).unwrap();
        assert!((est.value - joint.value).abs() < 2.0 * 0.04 + 0.02);
    }

    #[test]
    fn exact_only_requires_every_factor_exact() {
        let hard = atom(z(0) * z(0) + z(0) * z(1) - z(2), ConstraintOp::Lt);
        let easy = atom(z(3), ConstraintOp::Gt);
        let f = QfFormula::and([hard, easy]);
        let mut options = rewritten_options();
        options.method = MethodChoice::ExactOnly;
        assert!(matches!(
            measure_rewritten(&f, &options),
            Err(MeasureError::ExactUnavailable { .. })
        ));
    }

    #[test]
    fn mixed_exact_and_sampled_factors_multiply() {
        // (z0 > 0) — exact 1/2 — times a genuinely sampled 3-D factor
        // (its multi-term quadratic top defeats every exact evaluator).
        let sampled = QfFormula::or([
            QfFormula::and([
                atom(z(1) * z(1) + z(1) * z(2), ConstraintOp::Gt),
                atom(z(3), ConstraintOp::Lt),
            ]),
            atom(z(1) - z(3), ConstraintOp::Gt),
        ]);
        let f = QfFormula::and([atom(z(0), ConstraintOp::Gt), sampled.clone()]);
        let mut options = rewritten_options();
        options.method = MethodChoice::Afpras;
        let (est, trace) = measure_rewritten(&f, &options).unwrap();
        assert_eq!(trace.factors, 2);
        assert_eq!(trace.exact_factors, 1);
        assert_eq!(est.method, Method::Afpras);
        assert!(est.exact.is_none());
        // The sampled factor alone, scaled by the exact 1/2.
        let alone = afpras_estimate(&sampled, &options.afpras).unwrap();
        let expected: f64 = [0.5, alone.value].iter().product();
        assert_eq!(est.value.to_bits(), expected.to_bits(), "deterministic product");
    }
}
