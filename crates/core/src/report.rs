//! Text rendering of answer sets — the analyst-facing output of the §9
//! scenario ("provide the user with the additional information about
//! confidence levels for potential query answers").

use std::fmt::Write as _;

use crate::pipeline::AnswerWithCertainty;

/// Renders candidates and their confidence levels as an aligned text
/// table, sorted by decreasing certainty (ties: first-derivation order).
///
/// ```text
/// candidate        μ        method   dim
/// ("seg3")         1        exact      0
/// ("seg17")        0.3888   exact      2
/// ```
pub fn render_answers(answers: &[AnswerWithCertainty]) -> String {
    let mut rows: Vec<(String, String, String, String)> = Vec::with_capacity(answers.len());
    let mut order: Vec<usize> = (0..answers.len()).collect();
    order.sort_by(|&i, &j| {
        answers[j]
            .certainty
            .value
            .partial_cmp(&answers[i].certainty.value)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(i.cmp(&j))
    });
    for &i in &order {
        let a = &answers[i];
        let mu = match &a.certainty.exact {
            Some(r) => r.to_string(),
            None => format!("{:.4}", a.certainty.value),
        };
        rows.push((
            a.tuple.to_string(),
            mu,
            a.certainty.method.to_string(),
            a.certainty.dimension.to_string(),
        ));
    }

    let headers = ("candidate", "μ", "method", "dim");
    let w0 = rows.iter().map(|r| r.0.len()).chain([headers.0.len()]).max().unwrap_or(0);
    let w1 = rows.iter().map(|r| r.1.len()).chain([headers.1.len()]).max().unwrap_or(0);
    let w2 = rows.iter().map(|r| r.2.len()).chain([headers.2.len()]).max().unwrap_or(0);

    let mut out = String::new();
    let _ = writeln!(out, "{:<w0$}  {:<w1$}  {:<w2$}  dim", headers.0, headers.1, headers.2);
    for (c, m, meth, d) in rows {
        let _ = writeln!(out, "{c:<w0$}  {m:<w1$}  {meth:<w2$}  {d:>3}");
    }
    out
}

/// One-line summary: counts of certain / uncertain / impossible answers.
pub fn summarize(answers: &[AnswerWithCertainty]) -> String {
    let certain = answers.iter().filter(|a| a.certainty.is_certain()).count();
    let impossible = answers.iter().filter(|a| a.certainty.value <= 0.0).count();
    let uncertain = answers.len() - certain - impossible;
    format!(
        "{} answers: {certain} certain, {uncertain} uncertain, {impossible} impossible",
        answers.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::CertaintyEstimate;
    use qarith_constraints::QfFormula;
    use qarith_numeric::Rational;
    use qarith_types::{Tuple, Value};

    fn answer(label: &str, est: CertaintyEstimate) -> AnswerWithCertainty {
        AnswerWithCertainty {
            tuple: Tuple::new(vec![Value::str(label)]),
            certainty: est,
            formula: std::sync::Arc::new(QfFormula::True),
        }
    }

    #[test]
    fn renders_sorted_aligned_table() {
        let answers = vec![
            answer("low", CertaintyEstimate::exact_rational(Rational::new(1, 4), 2)),
            answer("sure", CertaintyEstimate::exact_rational(Rational::ONE, 0)),
            answer("mid", CertaintyEstimate::exact_real(0.5, 3)),
        ];
        let table = render_answers(&answers);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("candidate"));
        // Sorted by decreasing μ.
        assert!(lines[1].contains("sure") && lines[1].contains('1'));
        assert!(lines[2].contains("mid") && lines[2].contains("0.5000"));
        assert!(lines[3].contains("low") && lines[3].contains("1/4"));
        // Alignment: all rows have the μ column at the same offset.
        let col = lines[1].find('1').unwrap();
        assert_eq!(lines[3].find("1/4").unwrap(), col);
    }

    #[test]
    fn summary_counts() {
        let answers = vec![
            answer("a", CertaintyEstimate::exact_rational(Rational::ONE, 0)),
            answer("b", CertaintyEstimate::exact_real(0.4, 1)),
            answer("c", CertaintyEstimate::exact_rational(Rational::ZERO, 1)),
        ];
        assert_eq!(summarize(&answers), "3 answers: 1 certain, 1 uncertain, 1 impossible");
    }

    #[test]
    fn empty_input() {
        assert_eq!(summarize(&[]), "0 answers: 0 certain, 0 uncertain, 0 impossible");
        let table = render_answers(&[]);
        assert_eq!(table.lines().count(), 1, "header only");
    }
}
