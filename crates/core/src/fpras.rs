//! The multiplicative FPRAS of Theorem 7.1 for CQ(+,<) formulas.
//!
//! Ground formulas of conjunctive queries with linear constraints are
//! DNFs of linear atoms. Homogenize every atom (`c·z̄ ⋈ c₀` becomes
//! `c·z̄ ⋈ 0`); by the cited result of Console–Hofer–Libkin (IJCAI'19),
//! `ν(φ) = Vol(φ̃(ℝⁿ) ∩ B₁)/Vol(B₁)`. Each homogenized disjunct is an
//! intersection of halfspaces through the origin — a convex cone — so the
//! measure is the volume of a **union of convex bodies**:
//!
//! 1. convert each disjunct to a cone ∩ unit ball ([`qarith_geometry`]);
//! 2. discard empty/lower-dimensional cones by LP (their volume is 0);
//! 3. estimate each cone's volume by ball-annealing hit-and-run;
//! 4. combine with the Bringmann–Friedrich multiplicity-weighted union
//!    estimator.
//!
//! Equality atoms make a disjunct lower-dimensional (volume 0) unless
//! identically zero; `≠` atoms only remove measure-zero sets and are
//! dropped. Strictness of inequalities is likewise immaterial for
//! volumes. All such symbolic pre-processing happens exactly, on
//! rationals, before any `f64` geometry runs.
//!
//! The Monte-Carlo inner loops (rejection sampling, hit-and-run walks,
//! union multiplicity counting) are allocation-free: the geometry crate
//! exposes `_into` samplers and an `advance`/`current` chain API that
//! reuse per-loop buffers while consuming the RNG in exactly the order
//! of the allocating variants, so seeded runs are bit-identical.

use std::collections::HashMap;

use qarith_constraints::{Atom, ConstraintOp, Dnf, QfFormula, Var};
use qarith_geometry::{
    estimate_union_fraction, estimate_volume_fraction, ConvexBody, GeometryError, Halfspace,
    UnionBody, VolumeOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::MeasureError;
use crate::estimate::{CertaintyEstimate, Method};

/// Options for the multiplicative scheme.
#[derive(Clone, Debug)]
pub struct FprasOptions {
    /// Relative error ε ∈ (0, 1].
    pub epsilon: f64,
    /// Failure probability δ ∈ (0, 1).
    pub delta: f64,
    /// Budget for the DNF conversion (exceeding it aborts with
    /// [`qarith_constraints::FormulaError::DnfBlowup`]).
    pub dnf_limit: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FprasOptions {
    fn default() -> Self {
        FprasOptions { epsilon: 0.1, delta: 0.25, dnf_limit: 4096, seed: 0x5EED_F12A }
    }
}

/// Result of an FPRAS run.
#[derive(Clone, Debug)]
pub struct FprasOutcome {
    /// The estimate of `ν(φ)`.
    pub estimate: f64,
    /// Number of non-empty cones.
    pub cones: usize,
    /// Total Monte-Carlo samples spent (volume phases + union).
    pub samples: usize,
    /// Dimension of the variable space.
    pub dimension: usize,
}

/// Estimates `ν(φ)` for a linear formula via the union-of-cones FPRAS.
///
/// Errors with [`MeasureError::NotLinear`] when an atom has degree > 1
/// (Theorem 7.1 does not extend to multiplication, and no multiplicative
/// scheme can exist for full FO by Theorem 6.3).
pub fn estimate_nu(phi: &QfFormula, opts: &FprasOptions) -> Result<FprasOutcome, MeasureError> {
    if !(opts.epsilon > 0.0 && opts.epsilon <= 1.0) {
        return Err(MeasureError::BadTolerance { value: opts.epsilon });
    }
    let dnf = phi.dnf(opts.dnf_limit)?;
    if !dnf.is_linear() {
        return Err(MeasureError::NotLinear);
    }

    // Dense variable order across the whole formula.
    let vars: Vec<Var> = phi.vars().into_iter().collect();
    let dense: HashMap<Var, usize> = vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let n = vars.len();
    if n == 0 {
        // Variable-free: the DNF is a Boolean constant.
        let truth = dnf.eval_f64(&[]);
        return Ok(FprasOutcome {
            estimate: if truth { 1.0 } else { 0.0 },
            cones: 0,
            samples: 0,
            dimension: 0,
        });
    }

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let cones = build_cones(&dnf, &dense, n)?;
    if cones.iter().any(Option::is_none) {
        // A disjunct with no effective constraints covers the whole ball.
        return Ok(FprasOutcome { estimate: 1.0, cones: cones.len(), samples: 0, dimension: n });
    }
    let cones: Vec<ConvexBody> = cones.into_iter().flatten().collect();

    // Per-cone volume estimation; empty interiors contribute zero.
    // Sample counts scale with 1/ε² (heuristic constants; the formal
    // bound needs per-phase counts ~ phases²/ε² — callers wanting tighter
    // guarantees raise the budget through ε).
    let per_phase = ((2.0 / (opts.epsilon * opts.epsilon)).ceil() as usize).clamp(200, 50_000);
    let vol_opts = VolumeOptions { samples_per_phase: per_phase, ..VolumeOptions::default() };
    let mut union_bodies = Vec::with_capacity(cones.len());
    let mut spent = 0usize;
    for body in cones {
        match estimate_volume_fraction(&body, &mut rng, &vol_opts) {
            Ok(v) => {
                spent += per_phase; // one phase minimum; schedule varies
                if v > 0.0 {
                    union_bodies.push(UnionBody { body, volume: v });
                }
            }
            Err(GeometryError::EmptyInterior) => {}
            Err(e) => return Err(e.into()),
        }
    }
    if union_bodies.is_empty() {
        return Ok(FprasOutcome { estimate: 0.0, cones: 0, samples: spent, dimension: n });
    }

    let union_samples = ((4.0 * union_bodies.len() as f64 / (opts.epsilon * opts.epsilon)).ceil()
        as usize)
        .clamp(1_000, 400_000);
    let est = estimate_union_fraction(&union_bodies, &mut rng, union_samples, 6)?;
    spent += union_samples;
    Ok(FprasOutcome {
        estimate: est.min(1.0),
        cones: union_bodies.len(),
        samples: spent,
        dimension: n,
    })
}

/// Builds one cone per disjunct. `Ok(None)` inside the vector means the
/// disjunct is unconstrained (covers the ball). Disjuncts that are
/// syntactically empty (measure zero) are filtered out already.
fn build_cones(
    dnf: &Dnf,
    dense: &HashMap<Var, usize>,
    n: usize,
) -> Result<Vec<Option<ConvexBody>>, MeasureError> {
    let mut out = Vec::with_capacity(dnf.len());
    'disjuncts: for conj in dnf.disjuncts() {
        let mut halfspaces = Vec::with_capacity(conj.len());
        for atom in conj {
            match atom_to_halfspace(atom, dense, n) {
                AtomGeometry::Halfspace(h) => halfspaces.push(h),
                AtomGeometry::AlwaysTrue => {}
                AtomGeometry::MeasureZero | AtomGeometry::AlwaysFalse => continue 'disjuncts,
            }
        }
        if halfspaces.is_empty() {
            out.push(None); // whole ball
        } else {
            out.push(Some(ConvexBody::new(n, halfspaces, Some(1.0))));
        }
    }
    Ok(out)
}

enum AtomGeometry {
    Halfspace(Halfspace),
    /// Satisfied on all of ℝⁿ minus at most a null set.
    AlwaysTrue,
    /// Satisfied on at most a null set.
    MeasureZero,
    /// Satisfied nowhere.
    AlwaysFalse,
}

/// Homogenizes a linear atom and converts it to geometry.
fn atom_to_halfspace(atom: &Atom, dense: &HashMap<Var, usize>, n: usize) -> AtomGeometry {
    let lin = atom.as_linear().expect("linearity checked by caller");
    let homog = lin.homogenized();
    if homog.is_constant() {
        // Constant-direction atom: `0 ⋈ 0` asymptotically.
        return if atom.op().holds(0) {
            AtomGeometry::AlwaysTrue
        } else {
            AtomGeometry::AlwaysFalse
        };
    }
    let coeffs = homog.dense_coeffs(n, |v| dense[&v]);
    match atom.op() {
        // c·z < 0 (≤ differs by a null set).
        ConstraintOp::Lt | ConstraintOp::Le => AtomGeometry::Halfspace(Halfspace::new(coeffs, 0.0)),
        ConstraintOp::Gt | ConstraintOp::Ge => {
            let neg: Vec<f64> = coeffs.iter().map(|c| -c).collect();
            AtomGeometry::Halfspace(Halfspace::new(neg, 0.0))
        }
        ConstraintOp::Eq => AtomGeometry::MeasureZero,
        ConstraintOp::Ne => AtomGeometry::AlwaysTrue,
    }
}

/// Convenience wrapper producing a [`CertaintyEstimate`].
pub fn fpras_estimate(
    phi: &QfFormula,
    opts: &FprasOptions,
) -> Result<CertaintyEstimate, MeasureError> {
    let out = estimate_nu(phi, opts)?;
    Ok(CertaintyEstimate {
        value: out.estimate,
        exact: None,
        method: Method::Fpras,
        epsilon: Some(opts.epsilon),
        delta: Some(opts.delta),
        samples: out.samples,
        dimension: out.dimension,
        cached: false,
        rewritten: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_constraints::Polynomial;
    use qarith_numeric::Rational;

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    fn opts() -> FprasOptions {
        FprasOptions { epsilon: 0.08, ..FprasOptions::default() }
    }

    #[test]
    fn halfspace_is_half() {
        let out = estimate_nu(&atom(z(0) - z(1), ConstraintOp::Lt), &opts()).unwrap();
        assert!((out.estimate - 0.5).abs() < 0.05, "estimate {}", out.estimate);
        assert_eq!(out.dimension, 2);
    }

    #[test]
    fn quadrant_cone() {
        let phi = QfFormula::and([atom(z(0), ConstraintOp::Lt), atom(z(1), ConstraintOp::Lt)]);
        let out = estimate_nu(&phi, &opts()).unwrap();
        assert!((out.estimate - 0.25).abs() < 0.05, "estimate {}", out.estimate);
    }

    #[test]
    fn union_of_disjoint_cones() {
        // (z0<0 ∧ z1<0) ∨ (z0>0 ∧ z1>0): ν = 1/2.
        let phi = QfFormula::or([
            QfFormula::and([atom(z(0), ConstraintOp::Lt), atom(z(1), ConstraintOp::Lt)]),
            QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(1), ConstraintOp::Gt)]),
        ]);
        let out = estimate_nu(&phi, &opts()).unwrap();
        assert!((out.estimate - 0.5).abs() < 0.05, "estimate {}", out.estimate);
        assert_eq!(out.cones, 2);
    }

    #[test]
    fn overlapping_cones_not_double_counted() {
        // (z0 < 0) ∨ (z1 < 0): ν = 3/4.
        let phi = QfFormula::or([atom(z(0), ConstraintOp::Lt), atom(z(1), ConstraintOp::Lt)]);
        let out = estimate_nu(&phi, &opts()).unwrap();
        assert!((out.estimate - 0.75).abs() < 0.05, "estimate {}", out.estimate);
    }

    #[test]
    fn constants_are_homogenized_away() {
        // z0 < 100 behaves like z0 < 0: ν = 1/2.
        let phi = atom(z(0) - Polynomial::constant(Rational::from_int(100)), ConstraintOp::Lt);
        let out = estimate_nu(&phi, &opts()).unwrap();
        assert!((out.estimate - 0.5).abs() < 0.05);
    }

    #[test]
    fn equality_atoms_kill_disjuncts() {
        let phi =
            QfFormula::or([atom(z(0) - z(1), ConstraintOp::Eq), atom(z(0), ConstraintOp::Lt)]);
        let out = estimate_nu(&phi, &opts()).unwrap();
        assert!((out.estimate - 0.5).abs() < 0.05, "estimate {}", out.estimate);
    }

    #[test]
    fn empty_cone_contributes_zero() {
        // z0 < 0 ∧ z0 > 0 is empty.
        let phi = QfFormula::and([atom(z(0), ConstraintOp::Lt), atom(z(0), ConstraintOp::Gt)]);
        let out = estimate_nu(&phi, &opts()).unwrap();
        assert_eq!(out.estimate, 0.0);
    }

    #[test]
    fn nonlinear_rejected() {
        let phi = atom(z(0) * z(1), ConstraintOp::Lt);
        assert!(matches!(estimate_nu(&phi, &opts()), Err(MeasureError::NotLinear)));
    }

    #[test]
    fn variable_free_constants() {
        assert_eq!(estimate_nu(&QfFormula::True, &opts()).unwrap().estimate, 1.0);
        assert_eq!(estimate_nu(&QfFormula::False, &opts()).unwrap().estimate, 0.0);
    }

    #[test]
    fn three_dimensional_octant() {
        let phi = QfFormula::and([
            atom(z(0), ConstraintOp::Lt),
            atom(z(1), ConstraintOp::Lt),
            atom(z(2), ConstraintOp::Lt),
        ]);
        let out = estimate_nu(&phi, &opts()).unwrap();
        assert!((out.estimate - 0.125).abs() < 0.04, "estimate {}", out.estimate);
    }

    #[test]
    fn genuinely_linear_sums() {
        // z0 + z1 < 0: a rotated halfplane: ν = 1/2.
        let phi = atom(z(0) + z(1), ConstraintOp::Lt);
        let out = estimate_nu(&phi, &opts()).unwrap();
        assert!((out.estimate - 0.5).abs() < 0.05);
    }

    #[test]
    fn agrees_with_exact_arcs_on_a_wedge() {
        // The intro example cone: z1 ≥ 0 ∧ z0 ≥ 0 ∧ 0.7·z1 ≥ z0 —
        // homogenized version of the paper's constraint (1).
        let seven_tenths = Polynomial::constant(Rational::new(7, 10));
        let phi = QfFormula::and([
            atom(z(1), ConstraintOp::Ge),
            atom(z(0), ConstraintOp::Ge),
            atom(seven_tenths * z(1) - z(0), ConstraintOp::Ge),
        ]);
        let exact = crate::exact::arcs2d::exact_arc_measure(&phi);
        let out = estimate_nu(&phi, &opts()).unwrap();
        assert!((out.estimate - exact).abs() < 0.04, "fpras {} vs exact {exact}", out.estimate);
    }
}
