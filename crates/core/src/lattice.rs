//! The integer-domain measure (§10 of the paper).
//!
//! For integer-typed columns, §10 proposes replacing volumes by lattice
//! counts: `μ_ℤ(φ) = lim_r #(ℤⁿ ∩ φ ∩ B_r) / #(ℤⁿ ∩ B_r)`, and notes
//! that by the n-dimensional Gauss circle problem the number of lattice
//! points in `B_r` approximates `Vol(B_r)` up to lower-order terms — so
//! the integer measure coincides with the real measure ν for the
//! formulas of this framework.
//!
//! This module provides the finite-radius lattice ratio (by exact
//! enumeration, feasible in small dimension) so the convergence claim
//! can be *tested*, which `tests/` and the experiments do. Enumeration
//! is exponential in the dimension — this is a validation tool, not an
//! approximation algorithm (the AFPRAS already covers that role for both
//! models, by the equality of the limits).

use qarith_constraints::QfFormula;
use qarith_numeric::Rational;

use crate::error::MeasureError;

/// The finite-radius lattice ratio
/// `#(ℤⁿ ∩ φ ∩ B_r) / #(ℤⁿ ∩ B_r)`, with `φ` evaluated exactly on
/// rational (integer) points. Variables are densified in sorted order,
/// matching the other evaluators.
///
/// Complexity: `O((2r+1)ⁿ)` — keep `n ≤ 4` and `r ≤ 50` or so.
pub fn lattice_ratio(phi: &QfFormula, radius: i64) -> Result<f64, MeasureError> {
    assert!(radius >= 0, "radius must be non-negative");
    let dense = crate::exact::densify(phi);
    let n = dense.vars().len();
    if n == 0 {
        return Ok(if dense.eval_f64(&[]) { 1.0 } else { 0.0 });
    }
    assert!(n <= 6, "lattice enumeration is exponential; {n} dimensions is too many");

    let r2 = radius * radius;
    let mut point = vec![0i64; n];
    let mut inside = 0u64;
    let mut satisfied = 0u64;
    enumerate(&dense, radius, r2, &mut point, 0, 0, &mut inside, &mut satisfied)?;
    Ok(satisfied as f64 / inside as f64)
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    phi: &QfFormula,
    radius: i64,
    r2: i64,
    point: &mut [i64],
    depth: usize,
    norm2: i64,
    inside: &mut u64,
    satisfied: &mut u64,
) -> Result<(), MeasureError> {
    if depth == point.len() {
        *inside += 1;
        let rat: Vec<Rational> = point.iter().map(|&x| Rational::from_int(x)).collect();
        if phi
            .eval_rational(&rat)
            .map_err(|e| MeasureError::Formula(qarith_constraints::FormulaError::Numeric(e)))?
        {
            *satisfied += 1;
        }
        return Ok(());
    }
    for x in -radius..=radius {
        let n2 = norm2 + x * x;
        if n2 > r2 {
            continue;
        }
        point[depth] = x;
        enumerate(phi, radius, r2, point, depth + 1, n2, inside, satisfied)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use qarith_constraints::{Atom, ConstraintOp, Polynomial, Var};

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    #[test]
    fn halfline_converges_to_one_half() {
        let phi = atom(z(0), ConstraintOp::Gt);
        // ν = 1/2; at radius r the lattice ratio is r/(2r+1) → 1/2.
        let at_10 = lattice_ratio(&phi, 10).unwrap();
        assert!((at_10 - 10.0 / 21.0).abs() < 1e-12);
        let at_200 = lattice_ratio(&phi, 200).unwrap();
        assert!((at_200 - 0.5).abs() < 0.002);
    }

    #[test]
    fn quadrant_converges_to_exact_measure() {
        let phi = QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(1), ConstraintOp::Gt)]);
        let exact = exact::try_exact(&phi, 7).unwrap().value; // 1/4
        let mut prev_err = f64::INFINITY;
        for r in [5i64, 20, 60] {
            let ratio = lattice_ratio(&phi, r).unwrap();
            let err = (ratio - exact).abs();
            assert!(err <= prev_err + 0.02, "error should shrink with r (r={r}, err={err})");
            prev_err = err;
        }
        assert!(prev_err < 0.02, "final error {prev_err}");
    }

    #[test]
    fn wedge_converges_to_arctan_value() {
        // z0 ≥ 0 ∧ z1 ≤ z0: ν = 3/8 (Prop 6.1 with α = 1).
        let phi =
            QfFormula::and([atom(z(0), ConstraintOp::Ge), atom(z(1) - z(0), ConstraintOp::Le)]);
        let ratio = lattice_ratio(&phi, 60).unwrap();
        assert!((ratio - 0.375).abs() < 0.02, "got {ratio}");
    }

    #[test]
    fn constants_matter_at_finite_radius_but_vanish() {
        // z0 > 15: at radius 20 only 5 of 41 points qualify; at radius
        // 400 nearly half do.
        let phi = atom(z(0) - Polynomial::constant(Rational::from_int(15)), ConstraintOp::Gt);
        let small = lattice_ratio(&phi, 20).unwrap();
        assert!((small - 5.0 / 41.0).abs() < 1e-12);
        let large = lattice_ratio(&phi, 400).unwrap();
        assert!((large - 0.48).abs() < 0.01);
    }

    #[test]
    fn zero_dimensional() {
        assert_eq!(lattice_ratio(&QfFormula::True, 3).unwrap(), 1.0);
        assert_eq!(lattice_ratio(&QfFormula::False, 3).unwrap(), 0.0);
    }

    #[test]
    fn equalities_are_asymptotically_null_but_visible_at_small_radius() {
        // z0 = z1 on the lattice: (2r+1) points of (≈ π r²) — vanishing.
        let phi = atom(z(0) - z(1), ConstraintOp::Eq);
        let r10 = lattice_ratio(&phi, 10).unwrap();
        assert!(r10 > 0.0, "diagonal points exist at finite radius");
        let r40 = lattice_ratio(&phi, 40).unwrap();
        assert!(r40 < r10, "but their share shrinks: {r40} < {r10}");
    }
}
