//! The hardness gadgets of §6, implemented constructively.
//!
//! The paper's lower bounds encode propositional counting into μ:
//!
//! * **Theorem 6.3** (no FPRAS for FO(<) unless NP ⊆ BPP): for each 3CNF
//!   `ψ` over variables `x₁…x_n` there is a *fixed* FO(<) query `q` and a
//!   database `D_ψ` with `μ(q, D_ψ) = #ψ / 2ⁿ`.
//! * **Proposition 6.2** (FP^#P-hardness for CQ(<)): same shape with a
//!   3DNF and a conjunctive query.
//!
//! We reproduce both reductions as executable constructors. Each
//! propositional variable `xᵢ` becomes a numerical null `⊤ᵢ`; truth of
//! `xᵢ` is the event `⊤ᵢ > 0`, which has probability ½ independently
//! across variables under the direction measure — so μ counts satisfying
//! assignments. These constructions double as end-to-end validation:
//! the exact order evaluator must return exactly `#ψ/2ⁿ` (a brute-force
//! count), and the AFPRAS must land within ε of it.

use qarith_query::{Arg, BaseTerm, CompareOp, Formula, NumTerm, Query, TypedVar};
use qarith_types::{Column, Database, NumNullId, Relation, RelationSchema, Value};

/// A literal: variable index with polarity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Literal {
    /// 0-based propositional variable index.
    pub var: usize,
    /// `true` for a positive occurrence.
    pub positive: bool,
}

/// A 3-ary clause/term.
pub type Triple = [Literal; 3];

/// A propositional formula in 3CNF or 3DNF (interpretation depends on
/// the reduction used).
#[derive(Clone, Debug)]
pub struct ThreeSat {
    /// Number of propositional variables.
    pub vars: usize,
    /// The clauses (CNF) or terms (DNF).
    pub triples: Vec<Triple>,
}

impl ThreeSat {
    /// Counts satisfying assignments reading the triples as CNF clauses.
    pub fn count_cnf(&self) -> u64 {
        self.count(|assign| {
            self.triples
                .iter()
                .all(|clause| clause.iter().any(|l| assign >> l.var & 1 == u64::from(l.positive)))
        })
    }

    /// Counts satisfying assignments reading the triples as DNF terms.
    pub fn count_dnf(&self) -> u64 {
        self.count(|assign| {
            self.triples
                .iter()
                .any(|term| term.iter().all(|l| assign >> l.var & 1 == u64::from(l.positive)))
        })
    }

    fn count(&self, sat: impl Fn(u64) -> bool) -> u64 {
        assert!(self.vars <= 20, "brute-force counter is for validation sizes");
        (0u64..1 << self.vars).filter(|&a| sat(a)).count() as u64
    }
}

/// The Theorem 6.3 reduction: a fixed FO(<) query and a 3CNF-specific
/// database with `μ(q, D_ψ) = #ψ/2ⁿ`.
///
/// Encoding: `Clause(c)` lists clause ids; `PosLit(c, v)` / `NegLit(c, v)`
/// attach the nulls of the clause's positive/negative literals. The fixed
/// query (data complexity!) is
///
/// `q = ∀c Clause(c) → (∃v PosLit(c,v) ∧ v > 0) ∨ (∃v NegLit(c,v) ∧ v < 0)`.
pub fn encode_3cnf(psi: &ThreeSat) -> (Query, Database) {
    let mut db = Database::new();
    let clause_schema = RelationSchema::new("Clause", vec![Column::base("c")]).unwrap();
    let pos_schema =
        RelationSchema::new("PosLit", vec![Column::base("c"), Column::num("v")]).unwrap();
    let neg_schema =
        RelationSchema::new("NegLit", vec![Column::base("c"), Column::num("v")]).unwrap();
    let mut clauses = Relation::empty(clause_schema);
    let mut pos = Relation::empty(pos_schema);
    let mut neg = Relation::empty(neg_schema);
    for (ci, clause) in psi.triples.iter().enumerate() {
        let cid = Value::int(ci as i64);
        clauses.insert_values(vec![cid.clone()]).unwrap();
        for l in clause {
            let null = Value::NumNull(NumNullId(l.var as u32));
            if l.positive {
                pos.insert_values(vec![cid.clone(), null]).unwrap();
            } else {
                neg.insert_values(vec![cid.clone(), null]).unwrap();
            }
        }
    }
    db.add_relation(clauses).unwrap();
    db.add_relation(pos).unwrap();
    db.add_relation(neg).unwrap();

    let body = Formula::forall(
        vec![TypedVar::base("c")],
        Formula::implies(
            Formula::rel("Clause", vec![Arg::Base(BaseTerm::var("c"))]),
            Formula::or(vec![
                Formula::exists(
                    vec![TypedVar::num("v")],
                    Formula::and(vec![
                        Formula::rel(
                            "PosLit",
                            vec![Arg::Base(BaseTerm::var("c")), Arg::Num(NumTerm::var("v"))],
                        ),
                        Formula::cmp(NumTerm::var("v"), CompareOp::Gt, NumTerm::int(0)),
                    ]),
                ),
                Formula::exists(
                    vec![TypedVar::num("w")],
                    Formula::and(vec![
                        Formula::rel(
                            "NegLit",
                            vec![Arg::Base(BaseTerm::var("c")), Arg::Num(NumTerm::var("w"))],
                        ),
                        Formula::cmp(NumTerm::var("w"), CompareOp::Lt, NumTerm::int(0)),
                    ]),
                ),
            ]),
        ),
    );
    let query = Query::boolean(body, &db.catalog()).expect("gadget query is well-formed");
    (query, db)
}

/// The Proposition 6.2 reduction: a fixed CQ(<) query and a 3DNF-specific
/// database with `μ(q, D) = #ψ/2ᵏ`.
///
/// Encoding trick: a literal is a *pair of cells* `(lo, hi)` whose
/// constraint is `lo < hi` — `(0, ⊤ᵢ)` for a positive literal (`⊤ᵢ > 0`)
/// and `(⊤ᵢ, 0)` for a negative one (`⊤ᵢ < 0`). One relation row per DNF
/// term; the fixed conjunctive query joins the row and asserts the three
/// comparisons:
///
/// `q = ∃c,l₁,h₁,l₂,h₂,l₃,h₃ Term(c,l₁,h₁,…) ∧ l₁<h₁ ∧ l₂<h₂ ∧ l₃<h₃`.
pub fn encode_3dnf(psi: &ThreeSat) -> (Query, Database) {
    let mut db = Database::new();
    let schema = RelationSchema::new(
        "Term",
        vec![
            Column::base("c"),
            Column::num("l1"),
            Column::num("h1"),
            Column::num("l2"),
            Column::num("h2"),
            Column::num("l3"),
            Column::num("h3"),
        ],
    )
    .unwrap();
    let mut terms = Relation::empty(schema);
    for (ti, term) in psi.triples.iter().enumerate() {
        let mut row = vec![Value::int(ti as i64)];
        for l in term {
            let null = Value::NumNull(NumNullId(l.var as u32));
            if l.positive {
                row.push(Value::num(0));
                row.push(null);
            } else {
                row.push(null);
                row.push(Value::num(0));
            }
        }
        terms.insert_values(row).unwrap();
    }
    db.add_relation(terms).unwrap();

    let head: Vec<TypedVar> = Vec::new();
    let vars = ["l1", "h1", "l2", "h2", "l3", "h3"];
    let mut binders = vec![TypedVar::base("c")];
    binders.extend(vars.iter().map(|v| TypedVar::num(v)));
    let mut conj = vec![Formula::rel(
        "Term",
        std::iter::once(Arg::Base(BaseTerm::var("c")))
            .chain(vars.iter().map(|v| Arg::Num(NumTerm::var(v))))
            .collect(),
    )];
    for pair in vars.chunks(2) {
        conj.push(Formula::cmp(NumTerm::var(pair[0]), CompareOp::Lt, NumTerm::var(pair[1])));
    }
    let body = Formula::exists(binders, Formula::and(conj));
    let query = Query::new(head, body, &db.catalog()).expect("gadget query is well-formed");
    (query, db)
}

/// A deterministic pseudo-random 3SAT instance (for tests/benches).
pub fn random_instance(vars: usize, triples: usize, seed: u64) -> ThreeSat {
    assert!(vars >= 3);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut out = Vec::with_capacity(triples);
    for _ in 0..triples {
        let mut vs = [0usize; 3];
        vs[0] = next() as usize % vars;
        loop {
            vs[1] = next() as usize % vars;
            if vs[1] != vs[0] {
                break;
            }
        }
        loop {
            vs[2] = next() as usize % vars;
            if vs[2] != vs[0] && vs[2] != vs[1] {
                break;
            }
        }
        out.push([
            Literal { var: vs[0], positive: next() % 2 == 0 },
            Literal { var: vs[1], positive: next() % 2 == 0 },
            Literal { var: vs[2], positive: next() % 2 == 0 },
        ]);
    }
    ThreeSat { vars, triples: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_engine::ground;
    use qarith_types::Tuple;

    fn lit(var: usize, positive: bool) -> Literal {
        Literal { var, positive }
    }

    #[test]
    fn brute_force_counters() {
        // ψ = (x0 ∨ x1 ∨ x2): CNF count = 7, DNF count (single term
        // x0∧x1∧x2) = 1.
        let psi = ThreeSat { vars: 3, triples: vec![[lit(0, true), lit(1, true), lit(2, true)]] };
        assert_eq!(psi.count_cnf(), 7);
        assert_eq!(psi.count_dnf(), 1);
    }

    #[test]
    fn cnf_gadget_ground_formula_counts_satisfying_assignments() {
        let psi = ThreeSat {
            vars: 3,
            triples: vec![
                [lit(0, true), lit(1, false), lit(2, true)],
                [lit(0, false), lit(1, true), lit(2, true)],
            ],
        };
        let (q, db) = encode_3cnf(&psi);
        let phi = ground::ground(&q, &db, &Tuple::new(vec![])).unwrap();
        // Check against every sign pattern: φ at a representative point
        // must equal ψ at the corresponding assignment.
        for assign in 0u64..8 {
            let point: Vec<f64> =
                (0..3).map(|i| if assign >> i & 1 == 1 { 1.0 } else { -1.0 }).collect();
            let expected = psi
                .triples
                .iter()
                .all(|clause| clause.iter().any(|l| (assign >> l.var & 1 == 1) == l.positive));
            assert_eq!(phi.eval_f64(&point), expected, "assignment {assign:#b}");
        }
    }

    #[test]
    fn dnf_gadget_ground_formula_counts_satisfying_assignments() {
        let psi = ThreeSat {
            vars: 4,
            triples: vec![
                [lit(0, true), lit(1, true), lit(2, false)],
                [lit(1, false), lit(2, true), lit(3, true)],
            ],
        };
        let (q, db) = encode_3dnf(&psi);
        assert!(q.fragment().conjunctive, "Prop 6.2 needs a CQ");
        let phi = ground::ground(&q, &db, &Tuple::new(vec![])).unwrap();
        for assign in 0u64..16 {
            let point: Vec<f64> =
                (0..4).map(|i| if assign >> i & 1 == 1 { 1.0 } else { -1.0 }).collect();
            let expected = psi
                .triples
                .iter()
                .any(|term| term.iter().all(|l| (assign >> l.var & 1 == 1) == l.positive));
            assert_eq!(phi.eval_f64(&point), expected, "assignment {assign:#b}");
        }
    }

    #[test]
    fn random_instances_are_well_formed() {
        let psi = random_instance(6, 10, 42);
        assert_eq!(psi.triples.len(), 10);
        for t in &psi.triples {
            assert!(t.iter().all(|l| l.var < 6));
            assert_ne!(t[0].var, t[1].var);
            assert_ne!(t[1].var, t[2].var);
            assert_ne!(t[0].var, t[2].var);
        }
        // Determinism.
        let psi2 = random_instance(6, 10, 42);
        assert_eq!(psi.triples, psi2.triples);
    }
}
