//! The zero-one law for generic queries (§2 of the paper, after
//! Libkin PODS'18).
//!
//! For queries without interpreted numerical operations ("generic"
//! queries — those commuting with permutations of the domain), the
//! measure collapses: `μ(q, D, a) ∈ {0, 1}`, and `μ = 1` **iff** naive
//! evaluation returns the tuple (nulls as fresh distinct constants). The
//! measure machinery of §4 provably generalizes this (the Remark in §4),
//! and our implementation recovers it computationally: ground formulas of
//! generic queries only contain equality atoms between null variables and
//! constants, whose measure is 1 when identically true and 0 otherwise.

use qarith_engine::naive;
use qarith_engine::EngineError;
use qarith_numeric::Rational;
use qarith_query::Query;
use qarith_types::{Database, Tuple};

use crate::estimate::{CertaintyEstimate, Method};

/// `μ(q, D, a)` for a generic query, via the zero-one law: `1` if the
/// naive evaluation returns the candidate, else `0`.
///
/// Callers should check [`Fragment::is_generic`](qarith_query::Fragment::is_generic)
/// first; on non-generic queries the law does not hold and this function's
/// answer is meaningless (it will still run, since naive evaluation of
/// arithmetic-free atoms never errors).
pub fn zero_one_measure(
    query: &Query,
    db: &Database,
    candidate: &Tuple,
) -> Result<CertaintyEstimate, EngineError> {
    let holds = naive::holds_for_candidate(query, db, candidate)?;
    let mut est =
        CertaintyEstimate::exact_rational(if holds { Rational::ONE } else { Rational::ZERO }, 0);
    est.method = Method::ZeroOne;
    Ok(est)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_query::{Arg, BaseTerm, Formula, NumTerm, TypedVar};
    use qarith_types::{Column, NumNullId, Relation, RelationSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let schema = RelationSchema::new("R", vec![Column::base("a"), Column::num("x")]).unwrap();
        let mut r = Relation::empty(schema);
        r.insert_values(vec![Value::int(1), Value::NumNull(NumNullId(0))]).unwrap();
        r.insert_values(vec![Value::int(2), Value::num(5)]).unwrap();
        db.add_relation(r).unwrap();
        db
    }

    fn identity_query(db: &Database) -> Query {
        Query::new(
            vec![TypedVar::base("a"), TypedVar::num("x")],
            Formula::rel("R", vec![Arg::Base(BaseTerm::var("a")), Arg::Num(NumTerm::var("x"))]),
            &db.catalog(),
        )
        .unwrap()
    }

    #[test]
    fn naive_answers_have_measure_one() {
        let db = db();
        let q = identity_query(&db);
        assert!(q.fragment().is_generic());
        let member = Tuple::new(vec![Value::int(1), Value::NumNull(NumNullId(0))]);
        let est = zero_one_measure(&q, &db, &member).unwrap();
        assert!(est.is_certain());
        assert_eq!(est.method, Method::ZeroOne);
    }

    #[test]
    fn non_answers_have_measure_zero() {
        let db = db();
        let q = identity_query(&db);
        // (1, 5) is not a naive answer: ⊤0 is a fresh constant ≠ 5.
        let non = Tuple::new(vec![Value::int(1), Value::num(5)]);
        let est = zero_one_measure(&q, &db, &non).unwrap();
        assert_eq!(est.exact, Some(Rational::ZERO));
    }
}
