use std::fmt;

use qarith_constraints::FormulaError;
use qarith_engine::EngineError;
use qarith_geometry::GeometryError;

/// Errors from the measure layer.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureError {
    /// Grounding / evaluation failed.
    Engine(EngineError),
    /// Formula manipulation failed (e.g. DNF blowup on the FPRAS path).
    Formula(FormulaError),
    /// Geometry failed (LP stall; empty interiors are handled, not
    /// errors).
    Geometry(GeometryError),
    /// The FPRAS was requested for a formula with non-linear atoms
    /// (Theorem 7.1 covers CQ(+,<) only; use the additive scheme).
    NotLinear,
    /// An explicitly requested exact method does not apply to the
    /// formula (too many variables, non-order atoms, …).
    ExactUnavailable {
        /// Why no exact evaluator applies.
        reason: &'static str,
    },
    /// Invalid tolerance parameters (ε/δ must lie in (0, 1)).
    BadTolerance {
        /// The offending value.
        value: f64,
    },
    /// A conditional measure `ν(φ | ρ)` was requested for a condition
    /// with `ν(ρ) = 0` (bounded ranges, contradictions): the asymptotic
    /// conditional measure is undefined (§10 of the paper).
    DegenerateCondition,
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::Engine(e) => write!(f, "engine error: {e}"),
            MeasureError::Formula(e) => write!(f, "formula error: {e}"),
            MeasureError::Geometry(e) => write!(f, "geometry error: {e}"),
            MeasureError::NotLinear => write!(
                f,
                "the multiplicative FPRAS requires linear constraints (CQ(+,<)); \
                 use the additive scheme for FO(+,*,<)"
            ),
            MeasureError::ExactUnavailable { reason } => {
                write!(f, "no exact evaluator applies: {reason}")
            }
            MeasureError::BadTolerance { value } => {
                write!(f, "tolerance parameters must lie in (0, 1), got {value}")
            }
            MeasureError::DegenerateCondition => write!(
                f,
                "the condition has asymptotic measure zero (bounded range or \
                 contradiction); the conditional measure is undefined"
            ),
        }
    }
}

impl std::error::Error for MeasureError {}

impl From<EngineError> for MeasureError {
    fn from(e: EngineError) -> Self {
        MeasureError::Engine(e)
    }
}

impl From<FormulaError> for MeasureError {
    fn from(e: FormulaError) -> Self {
        MeasureError::Formula(e)
    }
}

impl From<GeometryError> for MeasureError {
    fn from(e: GeometryError) -> Self {
        MeasureError::Geometry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: MeasureError = GeometryError::EmptyInterior.into();
        assert!(matches!(e, MeasureError::Geometry(_)));
        assert!(MeasureError::NotLinear.to_string().contains("CQ(+,<)"));
        assert!(MeasureError::BadTolerance { value: 2.0 }.to_string().contains("2"));
    }
}
