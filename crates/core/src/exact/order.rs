//! Exact `ν(φ)` for order formulas by cell enumeration.
//!
//! An *order formula* compares single nulls with nulls or constants:
//! every atom's polynomial is (up to sign) `z_i − z_j + c` or `z_i + c`.
//! Asymptotically, constants vanish and each atom's truth along a
//! direction `a` depends only on the *order type* of
//! `(a_1, …, a_n, 0)` — which of the coordinates are negative, and how
//! they interleave.
//!
//! For the rotation-invariant direction distribution the coordinates are
//! exchangeable and sign-symmetric (iid Gaussians normalized), so the
//! probability of the cell "`a_{π(1)} < … < a_{π(j)} < 0 < a_{π(j+1)} <
//! … < a_{π(n)}`" is exactly
//!
//! `1 / (2ⁿ · j! · (n−j)!)`
//!
//! (signs are iid fair coins independent of the magnitudes; within the
//! negatives and positives all orderings are equally likely and
//! independent). Summing the probabilities of satisfied cells gives an
//! exact rational — witnessing, constructively, the rationality half of
//! Proposition 6.2 for FO(<).

use qarith_constraints::asymptotic::formula_limit_truth;
use qarith_constraints::{QfFormula, Var};
use qarith_numeric::{factorial, Rational};

/// Is every atom an order atom (`±(z_i − z_j) + c ⋈ 0` or `±z_i + c ⋈ 0`)?
pub fn is_order_formula(phi: &QfFormula) -> bool {
    let mut ok = true;
    phi.visit_atoms(&mut |a| {
        if !ok {
            return;
        }
        let p = a.poly();
        if p.degree() > 1 {
            ok = false;
            return;
        }
        let mut coeffs: Vec<i32> = Vec::new();
        for (m, c) in p.terms() {
            if m.is_unit() {
                continue; // constant term is asymptotically irrelevant
            }
            if *c == Rational::ONE {
                coeffs.push(1);
            } else if *c == -Rational::ONE {
                coeffs.push(-1);
            } else {
                ok = false;
                return;
            }
        }
        match coeffs.len() {
            0 | 1 => {}
            2 => {
                if coeffs[0] + coeffs[1] != 0 {
                    ok = false; // z_i + z_j is not an order comparison
                }
            }
            _ => ok = false,
        }
    });
    ok
}

/// Exact `ν(φ)` for an order formula (up to the caller-enforced variable
/// limit). Returns `None` if the permutation count overflows.
pub fn exact_order_measure(phi: &QfFormula) -> Option<Rational> {
    let dense = super::densify(phi);
    let vars: Vec<Var> = dense.vars().into_iter().collect();
    let n = vars.len();
    debug_assert!(vars.iter().enumerate().all(|(i, v)| v.index() == i));

    let mut total = Rational::ZERO;
    let mut perm: Vec<usize> = (0..n).collect();
    let mut direction = vec![0.0f64; n];

    // Heap's algorithm over permutations; for each, sweep the zero cut.
    let mut c = vec![0usize; n];
    let process = |perm: &[usize], direction: &mut [f64], total: &mut Rational| {
        for j in 0..=n {
            // Representative direction: position i (0-based) gets value
            // (i+1) − j − 0.5 for i < j (negative) and (i+1) − j for
            // i ≥ j (positive); strictly increasing along the
            // permutation with 0 between positions j−1 and j.
            for (pos, &var_idx) in perm.iter().enumerate() {
                let v = if pos < j {
                    (pos + 1) as f64 - j as f64 - 0.5
                } else {
                    (pos + 1) as f64 - j as f64
                };
                direction[var_idx] = v;
            }
            if formula_limit_truth(&dense, direction) {
                let denom = (1i128 << n)
                    * factorial(j as u64).expect("n is small")
                    * factorial((n - j) as u64).expect("n is small");
                *total += Rational::new(1, denom);
            }
        }
    };

    process(&perm, &mut direction, &mut total);
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            process(&perm, &mut direction, &mut total);
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_constraints::{Atom, ConstraintOp, Polynomial};

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    #[test]
    fn order_formula_recognition() {
        assert!(is_order_formula(&atom(z(0) - z(1), ConstraintOp::Lt)));
        assert!(is_order_formula(&atom(
            z(0) - Polynomial::constant(Rational::from_int(5)),
            ConstraintOp::Lt
        )));
        assert!(is_order_formula(&atom(z(1).negated(), ConstraintOp::Le)));
        // Sums, scaled variables, and products are not order atoms.
        assert!(!is_order_formula(&atom(z(0) + z(1), ConstraintOp::Lt)));
        assert!(!is_order_formula(&atom(
            Polynomial::constant(Rational::from_int(2)) * z(0) - z(1),
            ConstraintOp::Lt
        )));
        assert!(!is_order_formula(&atom(z(0) * z(1), ConstraintOp::Lt)));
    }

    #[test]
    fn single_variable_signs() {
        // z0 > 0: ν = 1/2.
        assert_eq!(
            exact_order_measure(&atom(z(0), ConstraintOp::Gt)).unwrap(),
            Rational::new(1, 2)
        );
        // z0 ≤ 0: ν = 1/2 (boundary is measure-zero).
        assert_eq!(
            exact_order_measure(&atom(z(0), ConstraintOp::Le)).unwrap(),
            Rational::new(1, 2)
        );
    }

    #[test]
    fn pairwise_order() {
        // z0 < z1: ν = 1/2.
        assert_eq!(
            exact_order_measure(&atom(z(0) - z(1), ConstraintOp::Lt)).unwrap(),
            Rational::new(1, 2)
        );
        // The paper's motivating σ_{A>B}(R) example on (⊥1, ⊥2): the
        // tuple is selected with probability 1/2.
        assert_eq!(
            exact_order_measure(&atom(z(0) - z(1), ConstraintOp::Gt)).unwrap(),
            Rational::new(1, 2)
        );
    }

    #[test]
    fn chains_give_factorials() {
        // z0 < z1 < z2: ν = 1/3! = 1/6.
        let phi = QfFormula::and([
            atom(z(0) - z(1), ConstraintOp::Lt),
            atom(z(1) - z(2), ConstraintOp::Lt),
        ]);
        assert_eq!(exact_order_measure(&phi).unwrap(), Rational::new(1, 6));
        // 0 < z0 < z1 < z2: one cell: 1/(2³·0!·3!) = 1/48.
        let phi = QfFormula::and([
            atom(z(0).negated(), ConstraintOp::Lt),
            atom(z(0) - z(1), ConstraintOp::Lt),
            atom(z(1) - z(2), ConstraintOp::Lt),
        ]);
        assert_eq!(exact_order_measure(&phi).unwrap(), Rational::new(1, 48));
    }

    #[test]
    fn constants_drop_out() {
        // z0 < z1 + 1000: asymptotically identical to z0 < z1.
        let phi =
            atom(z(0) - z(1) - Polynomial::constant(Rational::from_int(1000)), ConstraintOp::Lt);
        assert_eq!(exact_order_measure(&phi).unwrap(), Rational::new(1, 2));
        // z0 > 5 ∧ z0 < 7: both homogenize to z0 ⋈ 0 with conflicting
        // signs … z0 > 5 → z0 > 0 asymptotically; z0 < 7 → z0 < 0: ν = 0.
        let five = Polynomial::constant(Rational::from_int(5));
        let seven = Polynomial::constant(Rational::from_int(7));
        let phi = QfFormula::and([
            atom(z(0) - five, ConstraintOp::Gt),
            atom(z(0) - seven, ConstraintOp::Lt),
        ]);
        assert_eq!(exact_order_measure(&phi).unwrap(), Rational::ZERO);
    }

    #[test]
    fn boolean_structure() {
        // (z0 < z1) ∨ (z1 < z0): everything except the diagonal: ν = 1.
        let phi = QfFormula::or([
            atom(z(0) - z(1), ConstraintOp::Lt),
            atom(z(1) - z(0), ConstraintOp::Lt),
        ]);
        assert_eq!(exact_order_measure(&phi).unwrap(), Rational::ONE);
        // Equality: measure zero.
        let phi = atom(z(0) - z(1), ConstraintOp::Eq);
        assert_eq!(exact_order_measure(&phi).unwrap(), Rational::ZERO);
        // Negation: ¬(z0 < z1) has the complementary measure.
        let phi = atom(z(0) - z(1), ConstraintOp::Lt).negated();
        assert_eq!(exact_order_measure(&phi).unwrap(), Rational::new(1, 2));
    }

    #[test]
    fn mixed_sign_and_order() {
        // z0 > 0 ∧ z1 < 0: independent signs: 1/4.
        let phi = QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(1), ConstraintOp::Lt)]);
        assert_eq!(exact_order_measure(&phi).unwrap(), Rational::new(1, 4));
        // z0 > 0 ∧ z1 < 0 ∧ z1 < z0 — the third atom is implied: still 1/4.
        let phi = QfFormula::and([
            atom(z(0), ConstraintOp::Gt),
            atom(z(1), ConstraintOp::Lt),
            atom(z(1) - z(0), ConstraintOp::Lt),
        ]);
        assert_eq!(exact_order_measure(&phi).unwrap(), Rational::new(1, 4));
    }

    #[test]
    fn four_variable_sanity_against_sampling_free_identity() {
        // P(z0 < z1 ∧ z2 < z3) = 1/4 by independence of disjoint pairs.
        let phi = QfFormula::and([
            atom(z(0) - z(1), ConstraintOp::Lt),
            atom(z(2) - z(3), ConstraintOp::Lt),
        ]);
        assert_eq!(exact_order_measure(&phi).unwrap(), Rational::new(1, 4));
    }

    #[test]
    fn total_measure_of_all_cells_is_one() {
        // A tautology over 3 variables must integrate to exactly 1.
        let phi = QfFormula::or([
            atom(z(0) - z(1), ConstraintOp::Lt),
            atom(z(0) - z(1), ConstraintOp::Ge),
        ]);
        let _ = super::super::densify(&phi);
        assert_eq!(exact_order_measure(&phi).unwrap(), Rational::ONE);
    }
}
