//! Exact `ν(φ)` for formulas over ≤ 3 variables whose atoms have
//! *linear or monomial* leading forms, by spherical solid-angle
//! arithmetic.
//!
//! A direction `a` asymptotically satisfies an atom iff the comparison
//! holds for the sign of the atom's **top homogeneous component**
//! (Lemma 8.4, almost everywhere). Two shapes of top component reduce
//! that sign to hyperplane sign vectors:
//!
//! * a **linear form** `n·a` — the sign is hemisphere membership for
//!   the normal `n`;
//! * a **monomial** `c·∏ aᵥ^eᵥ` — the sign is
//!   `sign(c)·∏ sign(aᵥ)^eᵥ`, a ±product over the *coordinate*
//!   hyperplanes with odd exponent. (Monomial tops are what the §9
//!   workload's division elimination produces: cross-multiplied
//!   quantities like `z_i·z_j`.)
//!
//! Either way the formula's a.e. truth depends only on the **sign
//! vector** of finitely many hyperplane normals, so
//!
//! `ν(φ) = Σ_{s satisfying φ} Ω(C_s) / 4π`,
//!
//! where `C_s = {a : sᵢ·(nᵢ·a) > 0}` is an open polyhedral cone and
//! `Ω` its solid angle, computed in closed form:
//!
//! * no effective constraint — `4π`; one — a hemisphere, `2π`;
//! * a cone containing a full line (all normals orthogonal to a common
//!   axis) — `2θ` for the angular measure `θ` of the 2-D cross-section
//!   (the same sweep as the 2-D arc evaluator). Two-variable formulas
//!   are embedded into 3-D with a free third coordinate and land here:
//!   a planar sector of angle `θ` extrudes to a lune of area `2θ`, so
//!   `ν = 2θ/4π = θ/2π` as on the circle;
//! * a pointed full-dimensional cone — the spherical polygon of its
//!   extreme rays via Gauss–Bonnet: `Ω = Σ interior angles − (n−2)π`.
//!
//! Everything combinatorial is **exact**: normals are reduced to
//! primitive integer vectors, extreme-ray candidates are integer cross
//! products, acceptance and degeneracy tests are integer sign tests,
//! and the polygon's interior reference direction is the integer sum of
//! the accepted rays (strictly interior unless the cone is flat, which
//! an exact test catches and scores 0). Only the final angles go
//! through `f64` (`atan2`/`acos`), so the value is exact up to
//! rounding, like the 2-D arc evaluator. Spurious candidate rays that
//! land on a face interior are harmless: their interior angle is `π`,
//! which Gauss–Bonnet cancels against the `(n−2)π` term.
//!
//! The evaluator returns `None` (caller falls back to sampling) on
//! atoms whose top component is neither linear nor a monomial, on
//! arithmetic overflow while reducing to primitive vectors, or on more
//! than [`MAX_NORMALS`] distinct normals (the sign-vector enumeration
//! is `2^k`) — it never guesses.

use qarith_constraints::{ConstraintOp, QfFormula};
use qarith_numeric::{gcd_i128, lcm_i128};

use std::f64::consts::PI;

/// Cap on distinct (undirected) hyperplane normals: `2^k` cones are
/// enumerated, and each adds a row to the exact sign tables.
pub const MAX_NORMALS: usize = 10;

/// Boolean skeleton over atom slots. Each atom's a.e. sign is
/// `base_sign · ∏ s[j]` over its odd-parity normals: one entry for a
/// linear top form, the odd-exponent coordinate axes for a monomial
/// top.
enum Node {
    True,
    False,
    Atom { base_sign: i8, odd_normals: Vec<usize>, op: ConstraintOp },
    And(Vec<Node>),
    Or(Vec<Node>),
}

impl Node {
    /// A.e. truth of the formula on the open cone with sign vector `s`
    /// (`s[j]` is the sign of `n_j · a` for the undirected normal `j`).
    fn truth(&self, s: &[i8]) -> bool {
        match self {
            Node::True => true,
            Node::False => false,
            Node::Atom { base_sign, odd_normals, op } => {
                let mut sign = *base_sign as i32;
                for &j in odd_normals {
                    sign *= s[j] as i32;
                }
                op.holds(sign)
            }
            Node::And(parts) => parts.iter().all(|p| p.truth(s)),
            Node::Or(parts) => parts.iter().any(|p| p.truth(s)),
        }
    }
}

/// Exact spherical measure of a ≤3-variable formula with linear or
/// monomial top components, or `None` when this evaluator declines (see
/// module docs). Callers ensure `phi.vars().len() ≤ 3`; formulas over
/// fewer variables are embedded with free coordinates.
pub fn exact_sphere_measure(phi: &QfFormula) -> Option<f64> {
    if phi.vars().len() > 3 {
        return None;
    }
    let dense = super::densify(phi);

    // Reduce every atom to signed primitive integer normals; dedup
    // normals up to sign (the canonical representative has its first
    // nonzero component positive; flips fold into the atom's base
    // sign).
    let mut normals: Vec<[i128; 3]> = Vec::new();
    let skeleton = build(&dense, &mut normals)?;
    if normals.len() > MAX_NORMALS {
        return None;
    }
    let k = normals.len();
    if k == 0 {
        // No variable atoms survived — the formula is constant a.e.
        return Some(if skeleton.truth(&[]) { 1.0 } else { 0.0 });
    }

    // Extreme-ray candidates: pairwise cross products, both directions,
    // deduplicated as primitive vectors — plus, when the normals leave a
    // common orthogonal line (k == 1, or 2-D embeddings never do), the
    // single-constraint case below handles it. For each candidate, the
    // exact sign of its dot product with every normal.
    let mut rays: Vec<[i128; 3]> = Vec::new();
    for i in 0..k {
        for j in i + 1..k {
            let c = cross(&normals[i], &normals[j])?;
            if c == [0, 0, 0] {
                continue; // distinct primitives are never parallel, but stay total
            }
            let c = primitive(c)?;
            for cand in [c, neg(&c)] {
                if !rays.contains(&cand) {
                    rays.push(cand);
                }
            }
        }
    }
    let signs: Vec<Vec<i8>> = rays
        .iter()
        .map(|r| normals.iter().map(|n| dot(n, r).map(sign_of)).collect::<Option<Vec<i8>>>())
        .collect::<Option<_>>()?;
    let units: Vec<[f64; 3]> = rays.iter().map(unit).collect();

    // Enumerate sign vectors; sum solid angles of satisfying cones.
    let mut total = 0.0f64;
    let mut s = vec![1i8; k];
    for mask in 0..(1u32 << k) {
        for (j, slot) in s.iter_mut().enumerate() {
            *slot = if mask & (1 << j) == 0 { 1 } else { -1 };
        }
        if !skeleton.truth(&s) {
            continue;
        }
        total += cone_solid_angle(&normals, &s, &rays, &signs, &units)?;
    }
    Some((total / (4.0 * PI)).clamp(0.0, 1.0))
}

/// Solid angle of the open cone `{a : s_l·(n_l·a) > 0 ∀l}`, using the
/// precomputed candidate rays and their exact dot-product signs.
fn cone_solid_angle(
    normals: &[[i128; 3]],
    s: &[i8],
    rays: &[[i128; 3]],
    signs: &[Vec<i8>],
    units: &[[f64; 3]],
) -> Option<f64> {
    let k = normals.len();
    if k == 1 {
        return Some(2.0 * PI); // a single hemisphere
    }

    // Accepted rays: every signed constraint weakly satisfied.
    let accepted: Vec<usize> = (0..rays.len())
        .filter(|&r| (0..k).all(|l| s[l] as i32 * signs[r][l] as i32 >= 0))
        .collect();
    if accepted.is_empty() {
        return Some(0.0); // infeasible sign pattern
    }

    // A ray accepted together with its antipode forces every normal
    // orthogonal to it: the cone contains the full line, and its solid
    // angle is twice the angular measure of the 2-D cross-section.
    if let Some(&axis) =
        accepted.iter().find(|&&r| accepted.iter().any(|&r2| rays[r2] == neg(&rays[r])))
    {
        return Some(2.0 * cross_section_angle(normals, s, &units[axis]));
    }

    if accepted.len() < 3 {
        return Some(0.0); // a full-dimensional pointed cone has ≥ 3 extreme rays
    }

    // Exact interior reference direction: the integer sum of the
    // accepted rays is a conic combination, so `n_l·m ≥ 0` throughout;
    // equality for some constraint means every accepted ray lies on
    // that facet — a flat cone of measure zero.
    let mut m = [0i128; 3];
    for &r in &accepted {
        m = [
            m[0].checked_add(rays[r][0])?,
            m[1].checked_add(rays[r][1])?,
            m[2].checked_add(rays[r][2])?,
        ];
    }
    if m == [0, 0, 0] {
        return Some(0.0); // rays cancel: degenerate (non-pointed handled above)
    }
    for l in 0..k {
        if s[l] as i128 * dot(&normals[l], &m)? == 0 {
            return Some(0.0);
        }
    }

    // Azimuthal order around the interior axis is the boundary order of
    // the convex spherical polygon; apply Gauss–Bonnet.
    let axis = unit(&m);
    let (e1, e2) = basis_perp(&axis);
    let mut ordered: Vec<(f64, usize)> = accepted
        .iter()
        .map(|&r| {
            let v = &units[r];
            (dot_f64(v, &e2).atan2(dot_f64(v, &e1)), r)
        })
        .collect();
    ordered.sort_by(|a, b| a.0.total_cmp(&b.0));

    let n = ordered.len();
    let mut angle_sum = 0.0;
    for i in 0..n {
        let prev = &units[ordered[(i + n - 1) % n].1];
        let here = &units[ordered[i].1];
        let next = &units[ordered[(i + 1) % n].1];
        angle_sum += interior_angle(prev, here, next)?;
    }
    Some((angle_sum - (n as f64 - 2.0) * PI).max(0.0))
}

/// Angular measure of `{φ : s_l·(n_l·u(φ)) > 0 ∀l}` on the unit circle
/// of the plane orthogonal to `axis` (all normals are orthogonal to the
/// axis here, so the constraints are genuinely 2-D). Same sweep as the
/// 2-D arc evaluator: cut at every constraint boundary, test midpoints.
fn cross_section_angle(normals: &[[i128; 3]], s: &[i8], axis: &[f64; 3]) -> f64 {
    let (e1, e2) = basis_perp(axis);
    let planar: Vec<[f64; 2]> = normals
        .iter()
        .zip(s)
        .map(|(n, &si)| {
            let nf = [n[0] as f64, n[1] as f64, n[2] as f64];
            [si as f64 * dot_f64(&nf, &e1), si as f64 * dot_f64(&nf, &e2)]
        })
        .collect();
    let mut cuts: Vec<f64> = Vec::with_capacity(2 * planar.len() + 1);
    for p in &planar {
        let theta = (-p[0]).atan2(p[1]);
        for t in [theta, theta + PI] {
            cuts.push(t.rem_euclid(2.0 * PI));
        }
    }
    cuts.push(0.0);
    cuts.sort_by(f64::total_cmp);
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let tau = 2.0 * PI;
    let mut satisfied = 0.0;
    for i in 0..cuts.len() {
        let start = cuts[i];
        let end = if i + 1 < cuts.len() { cuts[i + 1] } else { cuts[0] + tau };
        let mid = 0.5 * (start + end);
        let dir = [mid.cos(), mid.sin()];
        if planar.iter().all(|p| p[0] * dir[0] + p[1] * dir[1] > 0.0) {
            satisfied += end - start;
        }
    }
    satisfied
}

/// Lowers the formula onto deduplicated primitive normals. `None` when
/// an atom's top component is neither linear nor a monomial, or on
/// overflow.
fn build(f: &QfFormula, normals: &mut Vec<[i128; 3]>) -> Option<Node> {
    Some(match f {
        QfFormula::True => Node::True,
        QfFormula::False => Node::False,
        QfFormula::Not(_) => unreachable!("densify outputs NNF-compatible trees"),
        QfFormula::Atom(a) => {
            let top = a.poly().degree();
            if top == 0 {
                // Constant atoms fold at construction; stay total.
                let c = a.poly().as_constant()?;
                return Some(if a.op().holds(c.signum()) { Node::True } else { Node::False });
            }
            if top == 1 {
                // Linear top component: one general hyperplane normal.
                let mut v = [0i128; 3];
                let mut lcm: i128 = 1;
                for (_, c) in a.poly().terms().filter(|(m, _)| m.degree() == 1) {
                    lcm = lcm_i128(lcm, c.denom())?;
                }
                for (m, c) in a.poly().terms().filter(|(m, _)| m.degree() == 1) {
                    let (var, _) = m.factors()[0];
                    v[var.index()] = c.numer().checked_mul(lcm / c.denom())?;
                }
                let p = primitive(v)?;
                let canonical = canonical_sign(&p);
                let flipped = canonical != p;
                let normal = intern(normals, canonical);
                Node::Atom {
                    base_sign: if flipped { -1 } else { 1 },
                    odd_normals: vec![normal],
                    op: a.op(),
                }
            } else {
                // Monomial top component: sign(c)·∏ sign(aᵥ)^eᵥ over the
                // coordinate hyperplanes with odd exponent.
                let mut tops = a.poly().terms().filter(|(m, _)| m.degree() == top);
                let (mono, coeff) = tops.next()?;
                if tops.next().is_some() {
                    return None; // multi-term top component: not this evaluator's case
                }
                let mut odd_normals = Vec::new();
                for &(var, e) in mono.factors() {
                    if e % 2 == 1 {
                        let mut axis = [0i128; 3];
                        axis[var.index()] = 1;
                        odd_normals.push(intern(normals, axis));
                    }
                }
                Node::Atom { base_sign: coeff.signum() as i8, odd_normals, op: a.op() }
            }
        }
        QfFormula::And(parts) => {
            Node::And(parts.iter().map(|p| build(p, normals)).collect::<Option<_>>()?)
        }
        QfFormula::Or(parts) => {
            Node::Or(parts.iter().map(|p| build(p, normals)).collect::<Option<_>>()?)
        }
    })
}

fn intern(normals: &mut Vec<[i128; 3]>, n: [i128; 3]) -> usize {
    match normals.iter().position(|x| *x == n) {
        Some(i) => i,
        None => {
            normals.push(n);
            normals.len() - 1
        }
    }
}

fn primitive(v: [i128; 3]) -> Option<[i128; 3]> {
    let g = gcd_i128(gcd_i128(v[0].checked_abs()?, v[1].checked_abs()?), v[2].checked_abs()?);
    if g == 0 {
        return Some(v);
    }
    Some([v[0] / g, v[1] / g, v[2] / g])
}

/// First nonzero component positive.
fn canonical_sign(v: &[i128; 3]) -> [i128; 3] {
    match v.iter().find(|&&x| x != 0) {
        Some(&x) if x < 0 => neg(v),
        _ => *v,
    }
}

fn neg(v: &[i128; 3]) -> [i128; 3] {
    [-v[0], -v[1], -v[2]]
}

fn cross(a: &[i128; 3], b: &[i128; 3]) -> Option<[i128; 3]> {
    Some([
        a[1].checked_mul(b[2])?.checked_sub(a[2].checked_mul(b[1])?)?,
        a[2].checked_mul(b[0])?.checked_sub(a[0].checked_mul(b[2])?)?,
        a[0].checked_mul(b[1])?.checked_sub(a[1].checked_mul(b[0])?)?,
    ])
}

fn dot(a: &[i128; 3], b: &[i128; 3]) -> Option<i128> {
    a[0].checked_mul(b[0])?
        .checked_add(a[1].checked_mul(b[1])?)?
        .checked_add(a[2].checked_mul(b[2])?)
}

fn sign_of(x: i128) -> i8 {
    match x.cmp(&0) {
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    }
}

fn unit(v: &[i128; 3]) -> [f64; 3] {
    let f = [v[0] as f64, v[1] as f64, v[2] as f64];
    let n = (f[0] * f[0] + f[1] * f[1] + f[2] * f[2]).sqrt();
    [f[0] / n, f[1] / n, f[2] / n]
}

fn unit_f64(v: &[f64; 3]) -> Option<[f64; 3]> {
    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    if n < 1e-12 {
        return None;
    }
    Some([v[0] / n, v[1] / n, v[2] / n])
}

fn dot_f64(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// An orthonormal basis of the plane orthogonal to `m`.
fn basis_perp(m: &[f64; 3]) -> ([f64; 3], [f64; 3]) {
    let pick = if m[0].abs() < 0.9 { [1.0, 0.0, 0.0] } else { [0.0, 1.0, 0.0] };
    let d = dot_f64(&pick, m);
    let e1 = unit_f64(&[pick[0] - d * m[0], pick[1] - d * m[1], pick[2] - d * m[2]])
        .expect("pick is not parallel to m");
    let e2 =
        [m[1] * e1[2] - m[2] * e1[1], m[2] * e1[0] - m[0] * e1[2], m[0] * e1[1] - m[1] * e1[0]];
    (e1, e2)
}

/// Interior angle of the spherical polygon at `here`, between the great
/// circle arcs toward `prev` and `next`.
fn interior_angle(prev: &[f64; 3], here: &[f64; 3], next: &[f64; 3]) -> Option<f64> {
    let tangent = |to: &[f64; 3]| {
        let d = dot_f64(to, here);
        unit_f64(&[to[0] - d * here[0], to[1] - d * here[1], to[2] - d * here[2]])
    };
    let t1 = tangent(prev)?;
    let t2 = tangent(next)?;
    Some(dot_f64(&t1, &t2).clamp(-1.0, 1.0).acos())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_constraints::{Atom, Polynomial, Var};
    use qarith_numeric::Rational;

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn octant_is_one_eighth() {
        let f = QfFormula::and([
            atom(z(0), ConstraintOp::Gt),
            atom(z(1), ConstraintOp::Gt),
            atom(z(2), ConstraintOp::Gt),
        ]);
        close(exact_sphere_measure(&f).unwrap(), 0.125);
    }

    #[test]
    fn hemisphere_and_wedges() {
        // One constraint: a hemisphere.
        let h = atom(z(0) + z(1) + z(2), ConstraintOp::Gt);
        close(exact_sphere_measure(&h).unwrap(), 0.5);
        // Two constraints: the planes x = 0 and y = 0 meet at right
        // angles — a quarter sphere.
        let lune = QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(1), ConstraintOp::Gt)]);
        close(exact_sphere_measure(&lune).unwrap(), 0.25);
    }

    #[test]
    fn ordering_cone_matches_cell_count() {
        // z0 < z1 < z2: one of 3! orderings, sign-symmetric: ν = 1/6.
        let f = QfFormula::and([
            atom(z(1) - z(0), ConstraintOp::Gt),
            atom(z(2) - z(1), ConstraintOp::Gt),
        ]);
        close(exact_sphere_measure(&f).unwrap(), 1.0 / 6.0);
    }

    #[test]
    fn two_variable_embedding_matches_arcs() {
        // (z0 > 5) ∨ (z1 > 7): complement product 1 − 1/4 (constants
        // vanish asymptotically). Two variables embed with a free axis.
        let f = QfFormula::or([
            atom(z(0) - Polynomial::constant(Rational::from_int(5)), ConstraintOp::Gt),
            atom(z(1) - Polynomial::constant(Rational::from_int(7)), ConstraintOp::Gt),
        ]);
        close(exact_sphere_measure(&f).unwrap(), 0.75);
        // Against the 2-D arc evaluator on a generic linear formula.
        let g = QfFormula::and([
            atom(z(0) - Polynomial::constant(Rational::new(7, 10)) * z(1), ConstraintOp::Le),
            atom(z(1), ConstraintOp::Ge),
        ]);
        close(exact_sphere_measure(&g).unwrap(), crate::exact::arcs2d::exact_arc_measure(&g));
    }

    #[test]
    fn monomial_tops_reduce_to_coordinate_signs() {
        // z0·z1 > 0: two quadrants of four — ν = 1/2; embedded or not.
        let f = atom(z(0) * z(1), ConstraintOp::Gt);
        close(exact_sphere_measure(&f).unwrap(), 0.5);
        // c − z0·z1 ≥ 0 (a §9 division-elimination shape): a.e. truth is
        // z0·z1 < 0 … ⇝ sign(−z0z1) ≥ 0 a.e. ⇝ ν = 1/2.
        let g = atom(
            Polynomial::constant(Rational::new(29, 10))
                - Polynomial::constant(Rational::new(8, 5)) * z(0) * z(1),
            ConstraintOp::Ge,
        );
        close(exact_sphere_measure(&g).unwrap(), 0.5);
        // Mixed linear and monomial atoms: (z0·z1 > 0) ∧ (z2 > 0) — the
        // factors are independent: 1/2 · 1/2.
        let h = QfFormula::and([atom(z(0) * z(1), ConstraintOp::Gt), atom(z(2), ConstraintOp::Gt)]);
        close(exact_sphere_measure(&h).unwrap(), 0.25);
        // Odd square exponents drop: z0²·z1 > 0 iff z1 > 0 (a.e.).
        let sq = atom(z(0) * z(0) * z(1), ConstraintOp::Gt);
        close(exact_sphere_measure(&sq).unwrap(), 0.5);
    }

    #[test]
    fn mixed_degree_atoms_use_the_top_component() {
        // c·z0 − c'·z1·z2 ≤ 0: the quadratic term decides a.e. — truth
        // iff z1·z2 > 0 … ν = 1/2.
        let f = atom(
            Polynomial::constant(Rational::new(1841, 20)) * z(0)
                - Polynomial::constant(Rational::new(8161, 200)) * z(1) * z(2),
            ConstraintOp::Le,
        );
        close(exact_sphere_measure(&f).unwrap(), 0.5);
    }

    #[test]
    fn sign_vectors_partition_the_sphere() {
        let a = atom(z(0) + z(1), ConstraintOp::Gt);
        let f = QfFormula::or([a.clone(), a.negated()]);
        close(exact_sphere_measure(&f).unwrap(), 1.0);
        let g = QfFormula::or([
            atom(z(0) + z(1) - z(2), ConstraintOp::Ge),
            atom(z(0) + z(1) - z(2), ConstraintOp::Lt),
        ]);
        close(exact_sphere_measure(&g).unwrap(), 1.0);
    }

    #[test]
    fn declines_unsupported_shapes() {
        // Four variables.
        let f = QfFormula::and([
            atom(z(0) + z(1), ConstraintOp::Gt),
            atom(z(2) + z(3), ConstraintOp::Gt),
        ]);
        assert!(exact_sphere_measure(&f).is_none());
        // Multi-term quadratic top component.
        let g = atom(z(0) * z(0) + z(0) * z(1), ConstraintOp::Gt);
        assert!(exact_sphere_measure(&g).is_none());
    }

    #[test]
    fn agrees_with_sampling_on_random_formulas() {
        use qarith_constraints::asymptotic::CompiledFormula;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x3D);
        let mut checked = 0;
        for round in 0..40 {
            let mut atoms = Vec::new();
            for _ in 0..4 {
                let p = if round % 3 == 0 {
                    // Monomial-top shape.
                    Polynomial::constant(Rational::from_int(rng.gen_range(-3i64..=3)))
                        + Polynomial::constant(Rational::from_int(rng.gen_range(1i64..=4)))
                            * z(rng.gen_range(0u32..3))
                            * z(rng.gen_range(0u32..3))
                } else {
                    Polynomial::constant(Rational::from_int(rng.gen_range(-4i64..=4))) * z(0)
                        + Polynomial::constant(Rational::from_int(rng.gen_range(-4i64..=4))) * z(1)
                        + Polynomial::constant(Rational::from_int(rng.gen_range(-4i64..=4))) * z(2)
                        + Polynomial::constant(Rational::from_int(rng.gen_range(-4i64..=4)))
                };
                if p.degree() == 0 {
                    continue;
                }
                let op = if rng.gen_range(0..2) == 0 { ConstraintOp::Gt } else { ConstraintOp::Le };
                atoms.push(atom(p, op));
            }
            if atoms.len() < 2 {
                continue;
            }
            let (head, rest) = atoms.split_first().unwrap();
            let f = QfFormula::or([head.clone(), QfFormula::and(rest.iter().cloned())]);
            let Some(exact) = exact_sphere_measure(&f) else { continue };
            checked += 1;
            let compiled = CompiledFormula::compile(&f);
            let mut memo = compiled.new_memo();
            let mut hits = 0usize;
            let m = 40_000;
            for _ in 0..m {
                let dir = qarith_geometry::sample_unit_sphere(&mut rng, compiled.dim());
                if compiled.limit_truth(&dir, &mut memo) {
                    hits += 1;
                }
            }
            let sampled = hits as f64 / m as f64;
            assert!((exact - sampled).abs() < 0.02, "exact {exact} vs sampled {sampled} on {f}");
        }
        assert!(checked >= 10, "only {checked} formulas exercised the evaluator");
    }
}
