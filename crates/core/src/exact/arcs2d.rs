//! Exact `ν(φ)` for two-variable linear formulas, by arc arithmetic.
//!
//! In dimension 2 the direction space is the unit circle. A linear atom's
//! asymptotic truth along direction `θ` flips only where its homogeneous
//! part vanishes: `c₁·cosθ + c₂·sinθ = 0`, i.e. at two antipodal
//! *critical angles*. Between consecutive critical angles (over all
//! atoms) every atom — hence the whole formula — has constant limit
//! truth, so
//!
//! `ν(φ) = (Σ lengths of satisfied arcs) / 2π`,
//!
//! computed by sorting the critical angles and testing one midpoint per
//! arc with the Lemma 8.4 procedure. The result is a closed form in
//! arctangents — exactly the shape Proposition 6.1 proves is typically
//! irrational (`arctan(α)/2π + 1/2`), so the value is returned as `f64`
//! (exact up to rounding). This evaluator reproduces the paper's intro
//! example (`(π/2 − arctan(10/7))/2π ≈ 0.097`).

use qarith_constraints::asymptotic::formula_limit_truth;
use qarith_constraints::QfFormula;

/// Is the formula linear (degree ≤ 1 atoms) in exactly/at most 2
/// variables? (Callers check `vars().len() == 2`.)
pub fn is_linear_formula(phi: &QfFormula) -> bool {
    let mut ok = true;
    phi.visit_atoms(&mut |a| {
        if a.poly().degree() > 1 {
            ok = false;
        }
    });
    ok
}

/// Exact angular measure of a 2-variable linear formula.
///
/// The formula's two variables are densified onto coordinates 0 and 1.
pub fn exact_arc_measure(phi: &QfFormula) -> f64 {
    let dense = super::densify(phi);
    debug_assert!(dense.vars().len() <= 2);

    // Collect critical angles in [0, 2π): the zeros of each atom's
    // linear part.
    let mut cuts: Vec<f64> = Vec::new();
    dense.visit_atoms(&mut |a| {
        let mut c = [0.0f64; 2];
        for (m, coeff) in a.poly().terms().filter(|(m, _)| m.degree() == 1) {
            let (v, _) = m.factors()[0];
            c[v.index()] = coeff.to_f64();
        }
        if c[0] != 0.0 || c[1] != 0.0 {
            // c·(cosθ, sinθ) = 0 at θ ⟂ to c.
            let theta = (-c[0]).atan2(c[1]); // direction orthogonal to c
            for t in [theta, theta + std::f64::consts::PI] {
                cuts.push(normalize_angle(t));
            }
        }
    });
    cuts.push(0.0); // ensure at least one boundary
    cuts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    // Sweep arcs; evaluate the formula's limit truth at each midpoint.
    let tau = std::f64::consts::TAU;
    let mut satisfied = 0.0;
    for i in 0..cuts.len() {
        let start = cuts[i];
        let end = if i + 1 < cuts.len() { cuts[i + 1] } else { cuts[0] + tau };
        let mid = 0.5 * (start + end);
        let dir = [mid.cos(), mid.sin()];
        if formula_limit_truth(&dense, &dir) {
            satisfied += end - start;
        }
    }
    (satisfied / tau).clamp(0.0, 1.0)
}

fn normalize_angle(t: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let mut t = t % tau;
    if t < 0.0 {
        t += tau;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_constraints::{Atom, ConstraintOp, Polynomial, Var};
    use qarith_numeric::Rational;

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    const PI: f64 = std::f64::consts::PI;

    #[test]
    fn halfplane_is_half() {
        assert!((exact_arc_measure(&atom(z(0), ConstraintOp::Gt)) - 0.5).abs() < 1e-12);
        assert!((exact_arc_measure(&atom(z(1), ConstraintOp::Le)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quadrant_is_quarter() {
        let phi = QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(1), ConstraintOp::Gt)]);
        assert!((exact_arc_measure(&phi) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn paper_intro_example_value() {
        // Constraint (1): z1 ≥ 0 ∧ z0 ≥ 8 ∧ 0.7·z1 − z0 ≥ 0.
        // ν = (π/2 − arctan(10/7)) / 2π ≈ 0.0972.
        let seven_tenths = Polynomial::constant(Rational::new(7, 10));
        let phi = QfFormula::and([
            atom(z(1), ConstraintOp::Ge),
            atom(z(0) - Polynomial::constant(Rational::from_int(8)), ConstraintOp::Ge),
            atom(seven_tenths * z(1) - z(0), ConstraintOp::Ge),
        ]);
        let expected = (PI / 2.0 - (10.0f64 / 7.0).atan()) / (2.0 * PI);
        let got = exact_arc_measure(&phi);
        assert!((got - expected).abs() < 1e-12, "got {got}, expected {expected}");
        // ≈ 0.097, and 4× ≈ 0.388 of the positive quadrant (the paper's
        // headline numbers).
        assert!((got - 0.0972).abs() < 5e-4);
        assert!((4.0 * got - 0.3888).abs() < 2e-3);
    }

    #[test]
    fn proposition_6_1_arctan_family() {
        // q = ∃x,y R(x,y) ∧ x ≥ 0 ∧ y ≤ α·x on R(⊤,⊤′) grounds to
        // z0 ≥ 0 ∧ z1 ≤ α·z0, with μ = arctan(α)/2π + 1/4 … the paper
        // states arctan(α)/2π + 1/2 for its exact variant; geometrically:
        // the region {x ≥ 0, y ≤ αx} is a wedge from angle −π/2 to
        // arctan(α): measure = (arctan(α) + π/2)/2π.
        for alpha in [-2.0f64, -1.0, -0.5, 0.0, 0.5, 1.0, 3.0] {
            let a = Polynomial::constant(Rational::parse_decimal(&alpha.to_string()).unwrap());
            let phi = QfFormula::and([
                atom(z(0), ConstraintOp::Ge),
                atom(z(1) - a * z(0), ConstraintOp::Le),
            ]);
            let expected = (alpha.atan() + PI / 2.0) / (2.0 * PI);
            let got = exact_arc_measure(&phi);
            assert!((got - expected).abs() < 1e-9, "α = {alpha}: got {got}, expected {expected}");
        }
    }

    #[test]
    fn full_and_empty() {
        let taut = QfFormula::or([atom(z(0), ConstraintOp::Ge), atom(z(0), ConstraintOp::Lt)]);
        assert!((exact_arc_measure(&taut) - 1.0).abs() < 1e-12);
        let contra = QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(0), ConstraintOp::Lt)]);
        assert!(exact_arc_measure(&contra).abs() < 1e-12);
        // Lines have measure zero.
        let line = atom(z(0) - z(1), ConstraintOp::Eq);
        assert!(exact_arc_measure(&line).abs() < 1e-12);
    }

    #[test]
    fn constants_do_not_matter() {
        // z0 > 1000 ∧ z1 < −3: a quadrant, shifted.
        let phi = QfFormula::and([
            atom(z(0) - Polynomial::constant(Rational::from_int(1000)), ConstraintOp::Gt),
            atom(z(1) + Polynomial::constant(Rational::from_int(3)), ConstraintOp::Lt),
        ]);
        assert!((exact_arc_measure(&phi) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn disjunctions_union_arcs() {
        // {z0 > 0} ∪ {z1 > 0} = 3/4 of the circle.
        let phi = QfFormula::or([atom(z(0), ConstraintOp::Gt), atom(z(1), ConstraintOp::Gt)]);
        assert!((exact_arc_measure(&phi) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn linearity_detection() {
        assert!(is_linear_formula(&atom(z(0) + z(1), ConstraintOp::Lt)));
        assert!(!is_linear_formula(&atom(z(0) * z(1), ConstraintOp::Lt)));
    }
}
