//! Exact evaluation of `ν(φ)` for tractable special cases.
//!
//! Exact computation is FP^#P-hard in general (Proposition 6.2) and the
//! value can be irrational already for one linear atom (Proposition 6.1),
//! so no exact evaluator can be complete. This module covers the cases
//! where the value has a finite closed form:
//!
//! * **dimension 0** — variable-free formulas: `ν ∈ {0, 1}`;
//! * **dimension 1** — only the directions `+1` and `−1` exist:
//!   `ν ∈ {0, ½, 1}`;
//! * **order fragment** ([`order`]) — atoms comparing single nulls with
//!   nulls or constants: `ν` is an exact rational, computed by cell
//!   enumeration (this also witnesses the rationality claim of
//!   Proposition 6.2 for FO(<));
//! * **2-D linear** ([`arcs2d`]) — `ν` is an angular measure, exact up to
//!   `f64` arc arithmetic (this evaluates the paper's intro example and
//!   the arctangent values of Proposition 6.1).

pub mod arcs2d;
pub mod order;
pub mod sphere3d;

use qarith_constraints::asymptotic::formula_limit_truth;
use qarith_constraints::QfFormula;
use qarith_numeric::Rational;

use crate::estimate::CertaintyEstimate;

/// Which exact evaluator handles a formula. Routing is ordered: the
/// order fragment wins over the 2-D arc evaluator when both apply
/// (rational beats closed-form `f64`).
enum ExactRoute {
    /// Variable-free: `ν ∈ {0, 1}` by direct evaluation.
    Dim0,
    /// One variable: only the directions `±1` exist.
    Dim1,
    /// The order fragment (`n` variables): exact cell counting.
    Order(usize),
    /// Two-variable linear: exact arc arithmetic.
    Arcs2d,
}

/// The single routing decision shared by [`try_exact`] and
/// [`exact_applicable`] — keeping them one definition is what the batch
/// engine's bit-identity argument relies on.
fn exact_route(phi: &QfFormula, order_limit: usize) -> Option<ExactRoute> {
    let n = phi.vars().len();
    match n {
        0 => Some(ExactRoute::Dim0),
        1 => Some(ExactRoute::Dim1),
        _ if n <= order_limit && order::is_order_formula(phi) => Some(ExactRoute::Order(n)),
        2 if arcs2d::is_linear_formula(phi) => Some(ExactRoute::Arcs2d),
        _ => None,
    }
}

/// Would an exact evaluator handle this formula? Used by the batch
/// engine to pick a cache-key granularity without computing the measure.
/// Conservative in one direction only: [`try_exact`] can still return
/// `None` when the order-fragment permutation count overflows, which
/// there merely costs a dedup opportunity, never correctness.
pub fn exact_applicable(phi: &QfFormula, order_limit: usize) -> bool {
    exact_route(phi, order_limit).is_some()
}

/// The wider evaluator set used by the rewrite pipeline's factor
/// routing: everything [`try_exact`] covers, plus the spherical
/// solid-angle evaluator ([`sphere3d`]) for 2–3-variable factors whose
/// atoms have linear or monomial leading forms (it declines anything
/// else). Kept out of [`try_exact`] deliberately: the unrewritten
/// `Auto` route's evaluator set is frozen (its estimates are pinned
/// bit-for-bit by the golden suites), while rewritten estimates are
/// already a separately-fingerprinted family.
pub fn try_exact_extended(phi: &QfFormula, order_limit: usize) -> Option<CertaintyEstimate> {
    try_exact(phi, order_limit).or_else(|| {
        let n = phi.vars().len();
        (2..=3)
            .contains(&n)
            .then(|| sphere3d::exact_sphere_measure(phi))
            .flatten()
            .map(|v| CertaintyEstimate::exact_real(v, n))
    })
}

/// Attempts an exact evaluation; returns `None` when no exact method
/// applies. `order_limit` bounds the cell enumeration (the number of
/// cells is `n!·(n+1)·…`; 8 variables ≈ 3.3M cells is the practical
/// ceiling).
pub fn try_exact(phi: &QfFormula, order_limit: usize) -> Option<CertaintyEstimate> {
    match exact_route(phi, order_limit)? {
        ExactRoute::Dim0 => {
            let truth = phi.eval_f64(&[]);
            Some(CertaintyEstimate::exact_rational(
                if truth { Rational::ONE } else { Rational::ZERO },
                0,
            ))
        }
        ExactRoute::Dim1 => {
            // ν = (limit at +∞ + limit at −∞) / 2, evaluated on the
            // dense 1-D direction space.
            let dense = densify(phi);
            let pos = formula_limit_truth(&dense, &[1.0]) as u32;
            let neg = formula_limit_truth(&dense, &[-1.0]) as u32;
            Some(CertaintyEstimate::exact_rational(Rational::new((pos + neg) as i128, 2), 1))
        }
        ExactRoute::Order(n) => {
            order::exact_order_measure(phi).map(|r| CertaintyEstimate::exact_rational(r, n))
        }
        ExactRoute::Arcs2d => {
            Some(CertaintyEstimate::exact_real(arcs2d::exact_arc_measure(phi), 2))
        }
    }
}

/// Renames the formula's variables onto `0..n` so direction vectors can be
/// dense (the public entry points of `qarith-constraints` index directions
/// by `Var::index`).
pub(crate) fn densify(phi: &QfFormula) -> QfFormula {
    use qarith_constraints::{Atom, Var};
    use std::collections::HashMap;
    let vars: Vec<Var> = phi.vars().into_iter().collect();
    let map: HashMap<Var, Var> =
        vars.iter().enumerate().map(|(i, &v)| (v, Var(i as u32))).collect();
    fn walk(f: &QfFormula, map: &HashMap<Var, Var>) -> QfFormula {
        match f {
            QfFormula::True => QfFormula::True,
            QfFormula::False => QfFormula::False,
            QfFormula::Atom(a) => {
                QfFormula::atom(Atom::new(a.poly().map_vars(|v| map[&v]), a.op()))
            }
            QfFormula::Not(inner) => walk(inner, map).negated(),
            QfFormula::And(parts) => QfFormula::and(parts.iter().map(|p| walk(p, map))),
            QfFormula::Or(parts) => QfFormula::or(parts.iter().map(|p| walk(p, map))),
        }
    }
    walk(phi, &map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_constraints::{Atom, ConstraintOp, Polynomial, Var};

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    #[test]
    fn dimension_zero() {
        let t = try_exact(&QfFormula::True, 8).unwrap();
        assert_eq!(t.exact, Some(Rational::ONE));
        let f = try_exact(&QfFormula::False, 8).unwrap();
        assert_eq!(f.exact, Some(Rational::ZERO));
    }

    #[test]
    fn dimension_one_values() {
        // z5 > 0 (sparse variable id exercises densification): ν = 1/2.
        let phi = atom(z(5), ConstraintOp::Gt);
        let e = try_exact(&phi, 8).unwrap();
        assert_eq!(e.exact, Some(Rational::new(1, 2)));
        // z0² ≥ 0: true along both directions: ν = 1.
        let phi = atom(z(0) * z(0), ConstraintOp::Ge);
        assert_eq!(try_exact(&phi, 8).unwrap().exact, Some(Rational::ONE));
        // z0 = 3: measure zero.
        let phi = atom(z(0) - Polynomial::constant(Rational::from_int(3)), ConstraintOp::Eq);
        assert_eq!(try_exact(&phi, 8).unwrap().exact, Some(Rational::ZERO));
    }

    #[test]
    fn high_degree_unsupported_beyond_dim_one() {
        // 3 variables, quadratic: no exact method.
        let phi = atom(z(0) * z(1) - z(2), ConstraintOp::Lt);
        assert!(try_exact(&phi, 8).is_none());
    }
}
