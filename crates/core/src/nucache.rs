//! The ν-cache: memoized certainty measures per canonical formula.
//!
//! Every estimate this crate produces is a *deterministic* function of
//! (formula, method, options): the exact evaluators are closed forms, and
//! both Monte-Carlo schemes derive their RNG streams from the configured
//! seed. That makes ν safe to memoize — the cached value is bit-identical
//! to what a fresh run would produce — provided the key captures
//! everything the computation depends on:
//!
//! * a **formula group key** from [`qarith_constraints::canonical`]
//!   (the structural key in general; the batch engine substitutes the
//!   coarser asymptotic key on the sampling route, where it is
//!   evaluation-equivalent — see `pipeline`);
//! * an **options fingerprint** hashing the method choice and every
//!   option that can influence the output bits (ε, δ, seeds, thread
//!   counts, sampling policy, DNF budget, order limit).
//!
//! The cache is internally synchronized: batch workers record results
//! concurrently, and a single instance can be shared across engines,
//! queries, and threads (`&NuCache` is `Send + Sync`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::estimate::CertaintyEstimate;

/// The cache interface the measurement pipeline consults.
///
/// [`NuCache`] is the reference implementation (unbounded, one lock) and
/// stays bit-pinned for the single-shot routes; `qarith-serve` provides a
/// bounded, sharded implementation for long-lived serving processes. The
/// contract every implementation must honor:
///
/// * **Bit-identity** — a value returned by [`CertaintyCache::get`] must
///   be byte-for-byte the estimate previously passed to
///   [`CertaintyCache::insert`] under the same `(group_key,
///   fingerprint)`. Since every estimate is a deterministic function of
///   that pair (see the module docs), an implementation is free to *drop*
///   entries at any time — eviction costs recomputation, never accuracy —
///   but must never return an entry recorded under a different key.
/// * **Thread safety** — `get`/`insert` may be called concurrently from
///   batch workers and serving clients (`Send + Sync`).
/// * **Provenance** — served estimates should be flagged
///   [`CertaintyEstimate::cached`]; the pipeline re-asserts the flag on
///   every hit, so implementations that forget are corrected, not broken.
pub trait CertaintyCache: Send + Sync + std::fmt::Debug {
    /// Looks up the estimate recorded for `(group_key, fingerprint)`.
    fn get(&self, group_key: &str, fingerprint: u64) -> Option<CertaintyEstimate>;
    /// Records an estimate. Last write wins; racing writers hold
    /// bit-identical values by construction.
    fn insert(&self, group_key: String, fingerprint: u64, estimate: CertaintyEstimate);
}

/// Hit/miss/size counters of a [`NuCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counters as stable `(name, value)` pairs, in declaration
    /// order — the machine-readable export the bench suite serializes
    /// into `BENCH_*.json`. Names are part of the JSON schema: renaming
    /// one is a baseline-breaking change.
    pub fn as_pairs(&self) -> [(&'static str, u64); 3] {
        [
            ("hits", self.hits as u64),
            ("misses", self.misses as u64),
            ("entries", self.entries as u64),
        ]
    }
}

/// A shared, synchronized memo table for `ν` results. Two-level map —
/// group key, then fingerprint — so lookups probe with `&str` and never
/// allocate (group keys are full formula serializations; copying them
/// per lookup would dominate the warm serving path).
#[derive(Debug, Default)]
pub struct NuCache {
    map: Mutex<HashMap<String, HashMap<u64, CertaintyEstimate>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl NuCache {
    /// An empty cache.
    pub fn new() -> NuCache {
        NuCache::default()
    }

    /// Looks up the estimate for a formula group key under an options
    /// fingerprint. Served entries are marked
    /// [`CertaintyEstimate::cached`].
    pub fn get(&self, group_key: &str, fingerprint: u64) -> Option<CertaintyEstimate> {
        let map = self.map.lock().expect("ν-cache poisoned");
        match map.get(group_key).and_then(|by_fp| by_fp.get(&fingerprint)) {
            Some(est) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut est = est.clone();
                est.cached = true;
                Some(est)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records an estimate. Last write wins (writers racing on one key
    /// hold bit-identical values by construction).
    pub fn insert(&self, group_key: String, fingerprint: u64, estimate: CertaintyEstimate) {
        let mut map = self.map.lock().expect("ν-cache poisoned");
        map.entry(group_key).or_default().insert(fingerprint, estimate);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        // analyze: allow(hash-iteration, reason = "summing lengths is commutative; the total is order-insensitive")
        let entries = self.map.lock().expect("ν-cache poisoned").values().map(HashMap::len).sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Drops all entries and counters.
    pub fn clear(&self) {
        self.map.lock().expect("ν-cache poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl CertaintyCache for NuCache {
    fn get(&self, group_key: &str, fingerprint: u64) -> Option<CertaintyEstimate> {
        NuCache::get(self, group_key, fingerprint)
    }

    fn insert(&self, group_key: String, fingerprint: u64, estimate: CertaintyEstimate) {
        NuCache::insert(self, group_key, fingerprint, estimate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_numeric::Rational;

    fn est(v: i128, d: i128) -> CertaintyEstimate {
        CertaintyEstimate::exact_rational(Rational::new(v, d), 1)
    }

    #[test]
    fn get_insert_roundtrip_and_stats() {
        let cache = NuCache::new();
        assert!(cache.get("k", 7).is_none());
        cache.insert("k".into(), 7, est(1, 2));
        let got = cache.get("k", 7).expect("present");
        assert_eq!(got.exact, Some(Rational::new(1, 2)));
        assert!(got.cached, "served entries are flagged");
        // Different fingerprint is a different entry.
        assert!(cache.get("k", 8).is_none());
        let stats = cache.stats();
        assert_eq!(stats, CacheStats { hits: 1, misses: 2, entries: 1 });
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets() {
        let cache = NuCache::new();
        cache.insert("a".into(), 0, est(1, 1));
        let _ = cache.get("a", 0);
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(cache.get("a", 0).is_none());
    }

    #[test]
    fn shared_across_threads() {
        let cache = NuCache::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    cache.insert(format!("k{t}"), 0, est(1, 4));
                    assert!(cache.get(&format!("k{t}"), 0).is_some());
                });
            }
        });
        assert_eq!(cache.stats().entries, 4);
    }
}
