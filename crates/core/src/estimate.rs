use std::fmt;

use qarith_numeric::Rational;

/// Which algorithm produced a certainty value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Method {
    /// Closed-form/exhaustive exact computation (dimensions 0–1, 2-D
    /// linear arcs, order-fragment cell counting).
    Exact,
    /// The additive-error scheme of Theorem 8.1.
    Afpras,
    /// The multiplicative-error scheme of Theorem 7.1.
    Fpras,
    /// The zero-one law for generic queries (§2): naive evaluation.
    ZeroOne,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::Exact => write!(f, "exact"),
            Method::Afpras => write!(f, "AFPRAS"),
            Method::Fpras => write!(f, "FPRAS"),
            Method::ZeroOne => write!(f, "zero-one law"),
        }
    }
}

/// A computed measure of certainty `μ(q, D, (a,s)) ∈ [0,1]`, with
/// provenance.
#[derive(Clone, Debug)]
pub struct CertaintyEstimate {
    /// The estimated (or exact) value.
    pub value: f64,
    /// Exact rational value, when the method produces one.
    pub exact: Option<Rational>,
    /// The algorithm used.
    pub method: Method,
    /// Error tolerance ε (additive for AFPRAS, relative for FPRAS);
    /// `None` for exact methods.
    pub epsilon: Option<f64>,
    /// Failure probability δ; `None` for exact methods.
    pub delta: Option<f64>,
    /// Monte-Carlo samples drawn (0 for exact methods).
    pub samples: usize,
    /// Dimension of the sampled direction space (number of numerical
    /// nulls that actually occur in the ground formula).
    pub dimension: usize,
    /// `true` iff the value was served by the ν-cache (or by batch
    /// deduplication) instead of a fresh computation. Cached values are
    /// bit-identical to fresh ones; this flag is provenance only and is
    /// ignored when comparing estimates for identity.
    pub cached: bool,
    /// `true` iff the rewrite pipeline (`qarith-rewrite` simplification
    /// and independence decomposition, `MeasureOptions::rewrite`)
    /// produced this estimate. Rewritten estimates keep the ε/δ guarantee
    /// but are **not** bit-identical to unrewritten ones — the sampled
    /// formula, its dimension, and the sample budget all change — so the
    /// flag (and the rewrite options folded into
    /// `MeasureOptions::fingerprint`) says which pipeline a value came
    /// from.
    pub rewritten: bool,
}

impl CertaintyEstimate {
    /// An exact rational result.
    pub fn exact_rational(v: Rational, dimension: usize) -> CertaintyEstimate {
        CertaintyEstimate {
            value: v.to_f64(),
            exact: Some(v),
            method: Method::Exact,
            epsilon: None,
            delta: None,
            samples: 0,
            dimension,
            cached: false,
            rewritten: false,
        }
    }

    /// An exact real result (closed form involving arctangents — exact up
    /// to `f64` rounding, e.g. the 2-D arc evaluator).
    pub fn exact_real(v: f64, dimension: usize) -> CertaintyEstimate {
        CertaintyEstimate {
            value: v,
            exact: None,
            method: Method::Exact,
            epsilon: None,
            delta: None,
            samples: 0,
            dimension,
            cached: false,
            rewritten: false,
        }
    }

    /// `true` iff the answer is (almost surely) certain.
    pub fn is_certain(&self) -> bool {
        match &self.exact {
            Some(r) => *r == Rational::ONE,
            None => self.value >= 1.0,
        }
    }
}

impl fmt::Display for CertaintyEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rw = if self.rewritten { ", rewritten" } else { "" };
        match &self.exact {
            Some(r) => write!(f, "μ = {r} ({}{rw})", self.method),
            None => match self.epsilon {
                Some(eps) => write!(f, "μ ≈ {:.4} (±{eps}, {}{rw})", self.value, self.method),
                None => write!(f, "μ = {:.6} ({}{rw})", self.value, self.method),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_certainty() {
        let e = CertaintyEstimate::exact_rational(Rational::ONE, 3);
        assert!(e.is_certain());
        assert_eq!(e.value, 1.0);
        assert_eq!(e.method, Method::Exact);

        let h = CertaintyEstimate::exact_rational(Rational::new(1, 2), 1);
        assert!(!h.is_certain());
        assert_eq!(h.value, 0.5);

        let r = CertaintyEstimate::exact_real(0.097, 2);
        assert!(!r.is_certain());
        assert!(r.exact.is_none());
    }

    #[test]
    fn display_forms() {
        let e = CertaintyEstimate::exact_rational(Rational::new(3, 8), 4);
        assert_eq!(e.to_string(), "μ = 3/8 (exact)");
        let a = CertaintyEstimate {
            value: 0.3891,
            exact: None,
            method: Method::Afpras,
            epsilon: Some(0.01),
            delta: Some(0.25),
            samples: 10_000,
            dimension: 2,
            cached: false,
            rewritten: false,
        };
        assert!(a.to_string().contains("AFPRAS"));
        assert!(a.to_string().contains("0.3891"));
    }
}
