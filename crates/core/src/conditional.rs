//! Conditional measures under attribute constraints (§10 of the paper).
//!
//! The paper's future-work section points out that the fully agnostic
//! model ("each null is an arbitrary real") should be refined by range
//! restrictions — "price is expected to be positive" — and that "the
//! model we proposed here is very easily adaptable to such
//! modifications. We can simply add such constraints in both the
//! numerator and denominator of the ratio defining the measure of
//! certainty." This module implements that refinement:
//!
//! `ν(φ | ρ) = lim_r Vol(φ ∧ ρ ∩ B_r) / Vol(ρ ∩ B_r) = ν(φ ∧ ρ) / ν(ρ)`.
//!
//! The limit on the right exists whenever `ν(ρ) > 0`, i.e. when the
//! constraint set ρ is **scale-insensitive at infinity** — sign
//! restrictions (`z ≥ 0`), ratio restrictions (`z₀ ≤ 2·z₁`), and
//! generally any formula whose homogenized cone has positive solid
//! angle. Bounded ranges such as `dis ∈ [0,1]` have `ν(ρ) = 0`: under
//! the asymptotic-volume semantics a bounded attribute occupies a
//! vanishing fraction of the ball, and the conditional measure is not
//! defined by this route (the paper's remark glosses this; we surface it
//! as [`MeasureError::DegenerateCondition`]). Handling bounded
//! attributes exactly would fix their scale rather than let `r → ∞` —
//! a different (non-asymptotic) model, out of scope here as in the
//! paper.
//!
//! The intro example's "≈ 0.388 of the positive quadrant" is precisely a
//! conditional measure: `ν(eq.(1) | z₀ ≥ 0 ∧ z₁ ≥ 0) = 0.0972/0.25`.

use qarith_constraints::QfFormula;

use crate::error::MeasureError;
use crate::estimate::{CertaintyEstimate, Method};
use crate::pipeline::CertaintyEngine;

/// Builds the conjunction `φ ∧ ρ` used in the numerator.
fn conjoin(phi: &QfFormula, rho: &QfFormula) -> QfFormula {
    QfFormula::and([phi.clone(), rho.clone()])
}

impl CertaintyEngine {
    /// The conditional measure `ν(φ | ρ)` of `φ` given the attribute
    /// constraints `ρ` (both quantifier-free formulas over the null
    /// variables `z̄`).
    ///
    /// Errors with [`MeasureError::DegenerateCondition`] when
    /// `ν(ρ) = 0` (e.g. bounded-range constraints, which vanish
    /// asymptotically) — the conditional measure is undefined then.
    pub fn conditional_nu(
        &self,
        phi: &QfFormula,
        rho: &QfFormula,
    ) -> Result<CertaintyEstimate, MeasureError> {
        let denominator = self.nu(rho)?;
        if denominator.value <= f64::EPSILON {
            return Err(MeasureError::DegenerateCondition);
        }
        let numerator = self.nu(&conjoin(phi, rho))?;

        // Exact in both parts ⇒ exact ratio.
        let exact = match (&numerator.exact, &denominator.exact) {
            (Some(n), Some(d)) => Some(n.checked_div(d).map_err(|e| {
                MeasureError::Formula(qarith_constraints::FormulaError::Numeric(e))
            })?),
            _ => None,
        };
        let value = match &exact {
            Some(r) => r.to_f64(),
            None => (numerator.value / denominator.value).min(1.0),
        };
        Ok(CertaintyEstimate {
            value,
            exact,
            // The weaker of the two methods determines the label.
            method: if numerator.method == Method::Exact && denominator.method == Method::Exact {
                Method::Exact
            } else {
                numerator.method
            },
            epsilon: numerator.epsilon.or(denominator.epsilon),
            delta: numerator.delta.or(denominator.delta),
            samples: numerator.samples + denominator.samples,
            dimension: numerator.dimension.max(denominator.dimension),
            cached: numerator.cached && denominator.cached,
            rewritten: numerator.rewritten || denominator.rewritten,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MeasureOptions;
    use qarith_constraints::{Atom, ConstraintOp, Polynomial, Var};
    use qarith_numeric::Rational;

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    fn engine() -> CertaintyEngine {
        CertaintyEngine::new(MeasureOptions::default())
    }

    fn positive_quadrant() -> QfFormula {
        QfFormula::and([atom(z(0), ConstraintOp::Ge), atom(z(1), ConstraintOp::Ge)])
    }

    #[test]
    fn intro_example_conditional_on_positive_quadrant() {
        // ν(eq.(1) | +quadrant) ≈ 0.388 — the intro's headline number.
        let seven_tenths = Polynomial::constant(Rational::new(7, 10));
        let eq1 = QfFormula::and([
            atom(z(1), ConstraintOp::Ge),
            atom(z(0) - Polynomial::constant(Rational::from_int(8)), ConstraintOp::Ge),
            atom(seven_tenths * z(1) - z(0), ConstraintOp::Ge),
        ]);
        let est = engine().conditional_nu(&eq1, &positive_quadrant()).unwrap();
        let pi = std::f64::consts::PI;
        let expected = ((pi / 2.0 - (10.0f64 / 7.0).atan()) / (2.0 * pi)) / 0.25;
        assert!((est.value - expected).abs() < 1e-9, "got {}", est.value);
        assert!((est.value - 0.3888).abs() < 2e-3);
    }

    #[test]
    fn order_conditions_give_exact_rationals() {
        // ν(z0 > z1 | z0 > 0 ∧ z1 > 0) = (1/8)/(1/4) = 1/2.
        let phi = atom(z(0) - z(1), ConstraintOp::Gt);
        let rho = QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(1), ConstraintOp::Gt)]);
        let est = engine().conditional_nu(&phi, &rho).unwrap();
        assert_eq!(est.exact, Some(Rational::new(1, 2)));
        assert_eq!(est.method, Method::Exact);
    }

    #[test]
    fn conditioning_on_everything_is_a_no_op() {
        let phi = atom(z(0), ConstraintOp::Gt);
        let est = engine().conditional_nu(&phi, &QfFormula::True).unwrap();
        assert_eq!(est.exact, Some(Rational::new(1, 2)));
    }

    #[test]
    fn conditioning_can_raise_or_collapse_certainty() {
        // ν(z0 > 0 | z0 > 0) = 1; ν(z0 > 0 | z0 < 0) = 0.
        let phi = atom(z(0), ConstraintOp::Gt);
        let pos = atom(z(0), ConstraintOp::Gt);
        let neg = atom(z(0), ConstraintOp::Lt);
        assert_eq!(engine().conditional_nu(&phi, &pos).unwrap().exact, Some(Rational::ONE));
        assert_eq!(engine().conditional_nu(&phi, &neg).unwrap().exact, Some(Rational::ZERO));
    }

    #[test]
    fn bounded_ranges_are_degenerate() {
        // dis ∈ [0, 1]: asymptotically a vanishing slab ⇒ ν(ρ) = 0 ⇒
        // conditional measure undefined (documented §10 gloss).
        let phi = atom(z(1), ConstraintOp::Gt);
        let rho = QfFormula::and([
            atom(z(0), ConstraintOp::Ge),
            atom(z(0) - Polynomial::one(), ConstraintOp::Le),
        ]);
        assert!(matches!(
            engine().conditional_nu(&phi, &rho),
            Err(MeasureError::DegenerateCondition)
        ));
    }

    #[test]
    fn contradictory_conditions_are_degenerate() {
        let phi = atom(z(0), ConstraintOp::Gt);
        let rho = QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(0), ConstraintOp::Lt)]);
        assert!(matches!(
            engine().conditional_nu(&phi, &rho),
            Err(MeasureError::DegenerateCondition)
        ));
    }
}
