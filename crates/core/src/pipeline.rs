//! The end-to-end certainty pipeline: query + database → candidate
//! answers → ground formulas → measures.
//!
//! This is the programmatic equivalent of the paper's §9 setup
//! (Postgres producing candidates and compact formulas, Python/NumPy
//! estimating confidences) in one engine, with automatic method
//! selection:
//!
//! | situation | method |
//! |---|---|
//! | generic query (no arithmetic) | zero-one law (naive evaluation) |
//! | ground formula with an exact evaluator (dim ≤ 1, order fragment, 2-D linear) | exact |
//! | CQ(+,<) when multiplicative guarantees are requested | FPRAS (Thm 7.1) |
//! | everything else | AFPRAS (Thm 8.1) |

use qarith_constraints::QfFormula;
use qarith_engine::cq::{self, CandidateAnswer, CqOptions};
use qarith_engine::{ground, naive, ActiveDomain};
use qarith_numeric::Rational;
use qarith_query::Query;
use qarith_types::{Database, Sort, Tuple, Value};

use crate::afpras::{afpras_estimate, AfprasOptions};
use crate::error::MeasureError;
use crate::estimate::CertaintyEstimate;
use crate::exact::try_exact;
use crate::fpras::{fpras_estimate, FprasOptions};
use crate::zero_one::zero_one_measure;

/// Which measure algorithm to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MethodChoice {
    /// Exact where possible, AFPRAS otherwise (zero-one shortcut for
    /// generic queries).
    #[default]
    Auto,
    /// Force the additive scheme (Theorem 8.1) even when an exact
    /// evaluator applies — useful for benchmarking.
    Afpras,
    /// Force the multiplicative scheme (Theorem 7.1); errors with
    /// [`MeasureError::NotLinear`] beyond CQ(+,<).
    Fpras,
    /// Exact evaluation only; errors with
    /// [`MeasureError::ExactUnavailable`] when no exact method applies.
    ExactOnly,
}

/// Options for the pipeline.
#[derive(Clone, Debug)]
pub struct MeasureOptions {
    /// Algorithm selection.
    pub method: MethodChoice,
    /// Additive-scheme options (ε, δ, sampling policy, threads).
    pub afpras: AfprasOptions,
    /// Multiplicative-scheme options.
    pub fpras: FprasOptions,
    /// Variable ceiling for the exact order-fragment evaluator
    /// (cells grow as `n!·(n+1)`).
    pub exact_order_limit: usize,
    /// Candidate generation for conjunctive queries.
    pub cq: CqOptions,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            method: MethodChoice::Auto,
            afpras: AfprasOptions::default(),
            fpras: FprasOptions::default(),
            exact_order_limit: 7,
            cq: CqOptions::default(),
        }
    }
}

impl MeasureOptions {
    /// Sets ε for both approximation schemes.
    pub fn with_epsilon(mut self, epsilon: f64) -> MeasureOptions {
        self.afpras.epsilon = epsilon;
        self.fpras.epsilon = epsilon;
        self
    }
}

/// A candidate answer with its certainty.
#[derive(Clone, Debug)]
pub struct AnswerWithCertainty {
    /// The candidate tuple.
    pub tuple: Tuple,
    /// Its measure of certainty.
    pub certainty: CertaintyEstimate,
    /// The ground formula (for inspection/debugging).
    pub formula: QfFormula,
}

/// The measure-of-certainty engine.
#[derive(Clone, Debug, Default)]
pub struct CertaintyEngine {
    options: MeasureOptions,
}

impl CertaintyEngine {
    /// An engine with the given options.
    pub fn new(options: MeasureOptions) -> CertaintyEngine {
        CertaintyEngine { options }
    }

    /// The configured options.
    pub fn options(&self) -> &MeasureOptions {
        &self.options
    }

    /// `ν(φ)` for a quantifier-free formula over the reals, using the
    /// configured method.
    ///
    /// `Auto` and `ExactOnly` first apply the measure-preserving
    /// [`QfFormula::ae_simplified`] rewrite, which strips measure-zero
    /// equality branches (ground formulas are full of them) and often
    /// unlocks an exact evaluator. `Afpras`/`Fpras` run on the formula
    /// as given — they exist to benchmark the paper's algorithms
    /// faithfully.
    pub fn nu(&self, phi: &QfFormula) -> Result<CertaintyEstimate, MeasureError> {
        match self.options.method {
            MethodChoice::Auto => {
                let simplified = phi.ae_simplified();
                if let Some(exact) = try_exact(&simplified, self.options.exact_order_limit) {
                    return Ok(exact);
                }
                afpras_estimate(&simplified, &self.options.afpras)
            }
            MethodChoice::Afpras => afpras_estimate(phi, &self.options.afpras),
            MethodChoice::Fpras => fpras_estimate(phi, &self.options.fpras),
            MethodChoice::ExactOnly => {
                try_exact(&phi.ae_simplified(), self.options.exact_order_limit).ok_or(
                    MeasureError::ExactUnavailable {
                        reason: "formula is not order/2-D-linear and has dimension > 1",
                    },
                )
            }
        }
    }

    /// `μ(q, D, candidate)`: grounds (Proposition 5.3) and measures.
    ///
    /// Generic queries short-circuit through the zero-one law under
    /// [`MethodChoice::Auto`].
    pub fn measure(
        &self,
        query: &Query,
        db: &Database,
        candidate: &Tuple,
    ) -> Result<CertaintyEstimate, MeasureError> {
        if self.options.method == MethodChoice::Auto && query.fragment().is_generic() {
            return Ok(zero_one_measure(query, db, candidate)?);
        }
        let phi = ground::ground(query, db, candidate)?;
        self.nu(&phi)
    }

    /// Candidate answers with certainties for a **conjunctive** query,
    /// via the join executor (the §9 pipeline). Candidates flagged
    /// `certain` by the executor get μ = 1 without sampling.
    pub fn answers(
        &self,
        query: &Query,
        db: &Database,
    ) -> Result<Vec<AnswerWithCertainty>, MeasureError> {
        let candidates = cq::execute(query, db, &self.options.cq)?;
        self.measure_candidates(candidates)
    }

    /// Candidate answers for **any** query: conjunctive queries take the
    /// join-executor fast path, everything else falls back to
    /// active-domain head enumeration (returning candidates with
    /// μ > `min_certainty`). The fallback is exponential in head arity
    /// and quantifier count — fine for the small databases where
    /// non-conjunctive queries are typically analyzed.
    pub fn answers_auto(
        &self,
        query: &Query,
        db: &Database,
        min_certainty: f64,
    ) -> Result<Vec<AnswerWithCertainty>, MeasureError> {
        if query.fragment().conjunctive {
            let mut answers = self.answers(query, db)?;
            answers.retain(|a| a.certainty.value > min_certainty);
            Ok(answers)
        } else {
            self.answers_enumerated(query, db, min_certainty)
        }
    }

    /// Measures a batch of pre-computed candidates (used by benches to
    /// separate candidate generation from the Monte-Carlo phase).
    pub fn measure_candidates(
        &self,
        candidates: Vec<CandidateAnswer>,
    ) -> Result<Vec<AnswerWithCertainty>, MeasureError> {
        let mut out = Vec::with_capacity(candidates.len());
        for cand in candidates {
            let certainty = if cand.certain {
                CertaintyEstimate::exact_rational(Rational::ONE, 0)
            } else {
                self.nu(&cand.formula)?
            };
            out.push(AnswerWithCertainty { tuple: cand.tuple, certainty, formula: cand.formula });
        }
        Ok(out)
    }

    /// Candidate answers for an **arbitrary** FO(+,·,<) query by
    /// active-domain enumeration of head tuples (exponential in the head
    /// arity — intended for small databases and tests; conjunctive
    /// queries should use [`CertaintyEngine::answers`]).
    ///
    /// Returns candidates whose measure exceeds `min_certainty`.
    pub fn answers_enumerated(
        &self,
        query: &Query,
        db: &Database,
        min_certainty: f64,
    ) -> Result<Vec<AnswerWithCertainty>, MeasureError> {
        let dom = ActiveDomain::collect(db, query, &[]);
        let mut out = Vec::new();
        let mut candidate = Vec::with_capacity(query.arity());
        self.enumerate(query, db, &dom, &mut candidate, min_certainty, &mut out)?;
        Ok(out)
    }

    fn enumerate(
        &self,
        query: &Query,
        db: &Database,
        dom: &ActiveDomain,
        candidate: &mut Vec<Value>,
        min_certainty: f64,
        out: &mut Vec<AnswerWithCertainty>,
    ) -> Result<(), MeasureError> {
        let i = candidate.len();
        if i == query.arity() {
            let tuple = Tuple::new(candidate.clone());
            let phi = ground::ground(query, db, &tuple)?;
            let certainty = self.nu(&phi)?;
            if certainty.value > min_certainty {
                out.push(AnswerWithCertainty { tuple, certainty, formula: phi });
            }
            return Ok(());
        }
        let domain: &[Value] = match query.free_vars()[i].sort {
            Sort::Base => dom.base(),
            Sort::Num => dom.num(),
        };
        for v in domain {
            candidate.push(v.clone());
            self.enumerate(query, db, dom, candidate, min_certainty, out)?;
            candidate.pop();
        }
        Ok(())
    }

    /// Certain answers in the classical sense, for *generic* queries:
    /// the tuples with μ = 1 by the zero-one law (i.e. naive evaluation,
    /// §2). Errors on queries with arithmetic, where naive evaluation is
    /// unsound.
    pub fn naive_answers(&self, query: &Query, db: &Database) -> Result<Vec<Tuple>, MeasureError> {
        Ok(naive::evaluate(query, db)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_query::{Arg, BaseTerm, CompareOp, Formula, NumTerm, TypedVar};
    use qarith_types::{Column, NumNullId, Relation, RelationSchema};

    fn db_single_pair() -> Database {
        // R(a: base, x: num, y: num) with one all-null numeric pair — the
        // paper's σ_{A>B}(R) motivating example.
        let mut db = Database::new();
        let schema =
            RelationSchema::new("R", vec![Column::base("a"), Column::num("x"), Column::num("y")])
                .unwrap();
        let mut r = Relation::empty(schema);
        r.insert_values(vec![
            Value::int(1),
            Value::NumNull(NumNullId(0)),
            Value::NumNull(NumNullId(1)),
        ])
        .unwrap();
        db.add_relation(r).unwrap();
        db
    }

    fn select_a_gt_b(db: &Database) -> Query {
        Query::new(
            vec![TypedVar::base("a")],
            Formula::exists(
                vec![TypedVar::num("x"), TypedVar::num("y")],
                Formula::and(vec![
                    Formula::rel(
                        "R",
                        vec![
                            Arg::Base(BaseTerm::var("a")),
                            Arg::Num(NumTerm::var("x")),
                            Arg::Num(NumTerm::var("y")),
                        ],
                    ),
                    Formula::cmp(NumTerm::var("x"), CompareOp::Gt, NumTerm::var("y")),
                ]),
            ),
            &db.catalog(),
        )
        .unwrap()
    }

    #[test]
    fn sigma_a_gt_b_has_measure_one_half() {
        // The paper's intro: "with probability 1/2 the tuple will be in
        // the answer".
        let db = db_single_pair();
        let q = select_a_gt_b(&db);
        let engine = CertaintyEngine::default();
        let est = engine.measure(&q, &db, &Tuple::new(vec![Value::int(1)])).unwrap();
        assert_eq!(est.exact, Some(Rational::new(1, 2)));
    }

    #[test]
    fn answers_pipeline_cq() {
        let db = db_single_pair();
        let q = select_a_gt_b(&db);
        let engine = CertaintyEngine::default();
        let answers = engine.answers(&q, &db).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].tuple, Tuple::new(vec![Value::int(1)]));
        assert_eq!(answers[0].certainty.exact, Some(Rational::new(1, 2)));
    }

    #[test]
    fn enumerated_answers_match_cq_answers() {
        let db = db_single_pair();
        let q = select_a_gt_b(&db);
        let engine = CertaintyEngine::default();
        let via_cq = engine.answers(&q, &db).unwrap();
        let via_enum = engine.answers_enumerated(&q, &db, 0.0).unwrap();
        assert_eq!(via_cq.len(), via_enum.len());
        assert_eq!(via_cq[0].tuple, via_enum[0].tuple);
        assert_eq!(via_cq[0].certainty.exact, via_enum[0].certainty.exact);
    }

    #[test]
    fn method_choices_are_respected() {
        let db = db_single_pair();
        let q = select_a_gt_b(&db);
        let t = Tuple::new(vec![Value::int(1)]);

        let exact_only = CertaintyEngine::new(MeasureOptions {
            method: MethodChoice::ExactOnly,
            ..MeasureOptions::default()
        });
        assert!(exact_only.measure(&q, &db, &t).unwrap().exact.is_some());

        let afpras = CertaintyEngine::new(MeasureOptions {
            method: MethodChoice::Afpras,
            ..MeasureOptions::default()
        });
        let est = afpras.measure(&q, &db, &t).unwrap();
        assert!(est.exact.is_none());
        assert!((est.value - 0.5).abs() < 0.1);

        let fpras = CertaintyEngine::new(MeasureOptions {
            method: MethodChoice::Fpras,
            ..MeasureOptions::default()
        });
        let est = fpras.measure(&q, &db, &t).unwrap();
        assert!((est.value - 0.5).abs() < 0.1);
    }

    #[test]
    fn generic_queries_use_zero_one_law() {
        let db = db_single_pair();
        let q = Query::new(
            vec![TypedVar::base("a")],
            Formula::exists(
                vec![TypedVar::num("x"), TypedVar::num("y")],
                Formula::rel(
                    "R",
                    vec![
                        Arg::Base(BaseTerm::var("a")),
                        Arg::Num(NumTerm::var("x")),
                        Arg::Num(NumTerm::var("y")),
                    ],
                ),
            ),
            &db.catalog(),
        )
        .unwrap();
        let engine = CertaintyEngine::default();
        let est = engine.measure(&q, &db, &Tuple::new(vec![Value::int(1)])).unwrap();
        assert_eq!(est.method, crate::estimate::Method::ZeroOne);
        assert!(est.is_certain());
        let est = engine.measure(&q, &db, &Tuple::new(vec![Value::int(2)])).unwrap();
        assert_eq!(est.exact, Some(Rational::ZERO));
    }
}
