//! The end-to-end certainty pipeline: query + database → candidate
//! answers → ground formulas → measures.
//!
//! This is the programmatic equivalent of the paper's §9 setup
//! (Postgres producing candidates and compact formulas, Python/NumPy
//! estimating confidences) in one engine, with automatic method
//! selection:
//!
//! | situation | method |
//! |---|---|
//! | generic query (no arithmetic) | zero-one law (naive evaluation) |
//! | ground formula with an exact evaluator (dim ≤ 1, order fragment, 2-D linear) | exact |
//! | CQ(+,<) when multiplicative guarantees are requested | FPRAS (Thm 7.1) |
//! | everything else | AFPRAS (Thm 8.1) |

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use qarith_constraints::asymptotic::CompiledFormula;
use qarith_constraints::canonical::{self, Canonical};
use qarith_constraints::QfFormula;
use qarith_engine::cq::{self, CandidateAnswer, CqOptions};
use qarith_engine::{ground, naive, ActiveDomain};
use qarith_numeric::Rational;
use qarith_query::Query;
use qarith_rewrite::{ae_simplify, RewriteOptions, RewriteOutcome, Rewriter};
use qarith_trace::{Stage, StageSink};
use qarith_types::{Database, Sort, Tuple, Value};

use crate::afpras::{afpras_estimate, estimate_nu_compiled_many, AfprasOptions, SampleCount};
use crate::decompose::{measure_prepared, measure_rewritten, RewriteStats, RewriteTrace};
use crate::error::MeasureError;
use crate::estimate::{CertaintyEstimate, Method};
use crate::exact::{exact_applicable, try_exact};
use crate::fpras::{fpras_estimate, FprasOptions};
use crate::nucache::{CertaintyCache, NuCache};
use crate::zero_one::zero_one_measure;

/// Which measure algorithm to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MethodChoice {
    /// Exact where possible, AFPRAS otherwise (zero-one shortcut for
    /// generic queries).
    #[default]
    Auto,
    /// Force the additive scheme (Theorem 8.1) even when an exact
    /// evaluator applies — useful for benchmarking.
    Afpras,
    /// Force the multiplicative scheme (Theorem 7.1); errors with
    /// [`MeasureError::NotLinear`] beyond CQ(+,<).
    Fpras,
    /// Exact evaluation only; errors with
    /// [`MeasureError::ExactUnavailable`] when no exact method applies.
    ExactOnly,
}

/// Options for the batch measurement path
/// ([`CertaintyEngine::measure_batch`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchOptions {
    /// Worker threads measuring unique formulas concurrently
    /// (1 = in-place, no spawning).
    pub threads: usize,
    /// Canonical deduplication: candidates whose ground formulas share a
    /// cache key are measured once. Disabling this reproduces the plain
    /// per-candidate loop (the "sequential uncached" baseline).
    pub dedup: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions { threads: 1, dedup: true }
    }
}

/// Options for the pipeline.
#[derive(Clone, Debug)]
pub struct MeasureOptions {
    /// Algorithm selection.
    pub method: MethodChoice,
    /// Additive-scheme options (ε, δ, sampling policy, threads).
    pub afpras: AfprasOptions,
    /// Multiplicative-scheme options.
    pub fpras: FprasOptions,
    /// Variable ceiling for the exact order-fragment evaluator
    /// (cells grow as `n!·(n+1)`).
    pub exact_order_limit: usize,
    /// Candidate generation for conjunctive queries.
    pub cq: CqOptions,
    /// Batch measurement (dedup + parallel fan-out).
    pub batch: BatchOptions,
    /// The `qarith-rewrite` pipeline: ν-preserving simplification and
    /// independence decomposition ahead of measurement. Disabled by
    /// default — rewritten estimates carry the same ε/δ guarantee but
    /// are not bit-identical to unrewritten ones, so the switch is part
    /// of [`MeasureOptions::fingerprint`] and of each estimate's
    /// provenance ([`CertaintyEstimate::rewritten`]).
    pub rewrite: RewriteOptions,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            method: MethodChoice::Auto,
            afpras: AfprasOptions::default(),
            fpras: FprasOptions::default(),
            exact_order_limit: 7,
            cq: CqOptions::default(),
            batch: BatchOptions::default(),
            rewrite: RewriteOptions::default(),
        }
    }
}

impl MeasureOptions {
    /// Sets ε for both approximation schemes.
    pub fn with_epsilon(mut self, epsilon: f64) -> MeasureOptions {
        self.afpras.epsilon = epsilon;
        self.fpras.epsilon = epsilon;
        self
    }

    /// Sets the batch fan-out width.
    pub fn with_batch_threads(mut self, threads: usize) -> MeasureOptions {
        self.batch.threads = threads;
        self
    }

    /// Sets the rewrite configuration (e.g. [`RewriteOptions::full`]).
    pub fn with_rewrite(mut self, rewrite: RewriteOptions) -> MeasureOptions {
        self.rewrite = rewrite;
        self
    }

    /// A fingerprint of every option that can influence the *bits* of an
    /// estimate — the method choice, tolerances, seeds, thread counts,
    /// and budgets of both schemes. Two engines with equal fingerprints
    /// produce bit-identical estimates for the same formula, which is
    /// what keys the [`NuCache`].
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        (self.method as u8).hash(&mut h);
        self.afpras.epsilon.to_bits().hash(&mut h);
        self.afpras.delta.to_bits().hash(&mut h);
        match self.afpras.samples {
            SampleCount::Hoeffding => 0u8.hash(&mut h),
            SampleCount::Paper => 1u8.hash(&mut h),
            SampleCount::Fixed(n) => {
                2u8.hash(&mut h);
                n.hash(&mut h);
            }
        }
        self.afpras.seed.hash(&mut h);
        self.afpras.threads.hash(&mut h);
        self.afpras.full_dimension.hash(&mut h);
        self.fpras.epsilon.to_bits().hash(&mut h);
        self.fpras.delta.to_bits().hash(&mut h);
        self.fpras.dnf_limit.hash(&mut h);
        self.fpras.seed.hash(&mut h);
        self.exact_order_limit.hash(&mut h);
        // The whole rewrite configuration: enabling any pass (or changing
        // the factor budget) changes which formula is sampled and with
        // what budget, hence the bits of the estimate.
        self.rewrite.hash(&mut h);
        h.finish()
    }
}

/// The shared admission predicate of [`CertaintyEngine::answers_auto`]
/// and [`CertaintyEngine::answers_enumerated`]: **strictly greater**.
/// A candidate whose measure equals the threshold exactly is excluded —
/// in particular `min_certainty = 0.0` drops impossible answers (μ = 0)
/// while keeping every candidate with positive measure. Both the
/// conjunctive fast path and the enumeration fallback use this one
/// definition, so the two routes cannot drift.
pub fn exceeds_min_certainty(estimate: &CertaintyEstimate, min_certainty: f64) -> bool {
    estimate.value > min_certainty
}

/// A candidate answer with its certainty.
#[derive(Clone, Debug)]
pub struct AnswerWithCertainty {
    /// The candidate tuple.
    pub tuple: Tuple,
    /// Its measure of certainty.
    pub certainty: CertaintyEstimate,
    /// The ground formula (for inspection/debugging). `Arc`-shared with
    /// the originating [`CandidateAnswer`] and any batch plan holding
    /// it, so rehydrating answers never deep-clones a formula tree.
    pub formula: Arc<QfFormula>,
}

/// Per-batch accounting from [`CertaintyEngine::measure_batch`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Candidates in the batch.
    pub candidates: usize,
    /// Candidates flagged certain by the executor (μ = 1, no sampling).
    pub certain: usize,
    /// Distinct formula groups among the uncertain candidates.
    pub groups: usize,
    /// Groups actually measured this call (the rest came from the
    /// ν-cache).
    pub measured: usize,
    /// Candidates served by in-batch deduplication (a group member after
    /// the first).
    pub dedup_hits: usize,
    /// Groups served by the engine's persistent [`NuCache`].
    pub cache_hits: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Rewrite-pipeline accounting (all zeros unless
    /// [`MeasureOptions::rewrite`] is enabled; covers freshly measured
    /// groups only — cache hits skip measurement).
    pub rewrite: RewriteStats,
}

impl BatchStats {
    /// The scalar counters as stable `(name, value)` pairs, in
    /// declaration order — the machine-readable export the bench suite
    /// serializes into its `BENCH_*.json` trajectory (the nested
    /// [`RewriteStats`] serializes separately via
    /// [`RewriteStats::as_pairs`]). Names are part of the JSON schema:
    /// renaming one is a baseline-breaking change.
    pub fn as_pairs(&self) -> [(&'static str, u64); 7] {
        [
            ("candidates", self.candidates as u64),
            ("certain", self.certain as u64),
            ("groups", self.groups as u64),
            ("measured", self.measured as u64),
            ("dedup_hits", self.dedup_hits as u64),
            ("cache_hits", self.cache_hits as u64),
            ("threads", self.threads as u64),
        ]
    }
}

/// Result of a batch measurement: per-candidate answers plus accounting.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// One entry per input candidate, in input order.
    pub answers: Vec<AnswerWithCertainty>,
    /// Dedup/cache/parallelism accounting.
    pub stats: BatchStats,
}

/// A unit of measurement work in a batch: a bare formula (measured via
/// [`CertaintyEngine::nu`]'s routing), or — with rewriting enabled — the
/// rewrite outcome prepared once per canonical class while building the
/// group key, so the pass pipeline never runs twice on a formula.
#[derive(Clone, Debug)]
enum Work {
    /// Measure this formula under the configured method (`Arc`-shared
    /// with the candidate it came from — plans hold references, not
    /// copies).
    Formula(Arc<QfFormula>),
    /// Measure this prepared decomposition (rewrite pipeline).
    Prepared(Box<RewriteOutcome>),
}

/// Where a candidate's estimate comes from.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// Executor-certain: μ = 1 without measuring.
    Certain,
    /// Index into the plan's groups; the flag marks the group's *first*
    /// candidate in input order (later members are dedup-served and
    /// flagged [`CertaintyEstimate::cached`]).
    Group(usize, bool),
}

/// The front half of a batch measurement, prepared once and executable
/// many times: per-candidate canonicalization, deduplication into
/// formula groups, cache-key construction, and (with rewriting enabled)
/// the per-class rewrite outcome.
///
/// [`CertaintyEngine::prepare_batch`] builds a plan;
/// [`CertaintyEngine::execute_plan`] runs the back half — ν-cache
/// lookup, measurement of the misses, rehydration — against the
/// engine's *current* cache state. A long-lived service keeps plans in
/// a plan cache (see `qarith-serve`) so repeat traffic skips parsing,
/// grounding, canonicalization, and rewriting entirely, going straight
/// to per-group ν lookup.
///
/// A plan embeds the candidate tuples and ground formulas it was built
/// from; executing it with an engine whose
/// [`MeasureOptions::fingerprint`] differs from the building engine's
/// is safe (the fingerprint is re-read at execution time) but wastes
/// the dedup granularity chosen at preparation time, so services
/// prepare and execute with the same options.
#[derive(Clone, Debug)]
pub struct BatchPlan {
    /// The input candidates, in input order (owned: answers are
    /// rehydrated from these on every execution).
    candidates: Vec<CandidateAnswer>,
    /// One slot per candidate.
    slots: Vec<Slot>,
    /// Deduplicated measurement work plus the ν-cache key (`None` with
    /// dedup off: nothing is shared).
    groups: Vec<(Work, Option<String>)>,
    /// Executor-certain candidates (μ = 1, no group).
    certain: usize,
    /// Candidates served by in-plan deduplication.
    dedup_hits: usize,
}

impl BatchPlan {
    /// Candidates covered by the plan.
    pub fn candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Distinct formula groups to measure or look up per execution.
    pub fn groups(&self) -> usize {
        self.groups.len()
    }

    /// The ν-cache keys of the plan's groups (`None` entries belong to
    /// plans prepared with dedup off, which never share).
    pub fn group_keys(&self) -> impl Iterator<Item = Option<&str>> {
        self.groups.iter().map(|(_, k)| k.as_deref())
    }
}

/// Accounting of the shared-sampling batch route (see
/// [`CertaintyEngine::shared_sampling_stats`]). `Arc`-shared across
/// engine clones, like the ν-cache, so a service's clones aggregate
/// into one view.
#[derive(Debug, Default)]
struct SharedSamplingCounters {
    /// `estimate_nu_compiled_many` calls issued by the batch path.
    calls: AtomicU64,
    /// Groups those calls covered (>&nbsp;`calls` means direction
    /// generation was actually shared across groups).
    groups: AtomicU64,
}

/// The measure-of-certainty engine.
#[derive(Clone, Debug, Default)]
pub struct CertaintyEngine {
    options: MeasureOptions,
    cache: Option<Arc<dyn CertaintyCache>>,
    shared_sampling: Arc<SharedSamplingCounters>,
}

impl CertaintyEngine {
    /// An engine with the given options.
    pub fn new(options: MeasureOptions) -> CertaintyEngine {
        CertaintyEngine { options, cache: None, shared_sampling: Arc::default() }
    }

    /// `(calls, groups)` routed through the shared-sampling batch path:
    /// how many `estimate_nu_compiled_many` fan-outs the single-worker
    /// batch route issued, and how many formula groups they covered in
    /// total. `groups > calls` is the signature of sharing — several
    /// groups paid one direction-generation pass.
    pub fn shared_sampling_stats(&self) -> (u64, u64) {
        (
            self.shared_sampling.calls.load(Ordering::Relaxed),
            self.shared_sampling.groups.load(Ordering::Relaxed),
        )
    }

    /// Attaches a persistent ν-cache, shared across batches (and across
    /// engine clones). Cached values are bit-identical to fresh runs —
    /// see [`crate::nucache`].
    pub fn with_cache(mut self, cache: Arc<NuCache>) -> CertaintyEngine {
        self.cache = Some(cache);
        self
    }

    /// Attaches any [`CertaintyCache`] implementation — the hook
    /// `qarith-serve` uses to substitute its bounded, sharded cache for
    /// the unbounded [`NuCache`] on the serving path.
    pub fn with_shared_cache(mut self, cache: Arc<dyn CertaintyCache>) -> CertaintyEngine {
        self.cache = Some(cache);
        self
    }

    /// The attached ν-cache, if any.
    pub fn cache(&self) -> Option<&dyn CertaintyCache> {
        self.cache.as_deref()
    }

    /// The configured options.
    pub fn options(&self) -> &MeasureOptions {
        &self.options
    }

    /// `ν(φ)` for a quantifier-free formula over the reals, using the
    /// configured method.
    ///
    /// With [`MeasureOptions::rewrite`] enabled, every method choice
    /// routes through the rewrite pipeline
    /// ([`crate::decompose::measure_rewritten`]): simplification,
    /// independence decomposition, exact routing per factor, product
    /// combination. Otherwise `Auto` and `ExactOnly` first apply the
    /// measure-preserving a.e. simplification (the frozen
    /// `ae_simplified` behavior, now served by
    /// [`qarith_rewrite::ae_simplify`]), which strips measure-zero
    /// equality branches (ground formulas are full of them) and often
    /// unlocks an exact evaluator; `Afpras`/`Fpras` run on the formula
    /// as given — they exist to benchmark the paper's algorithms
    /// faithfully.
    pub fn nu(&self, phi: &QfFormula) -> Result<CertaintyEstimate, MeasureError> {
        Ok(self.nu_traced(phi)?.0)
    }

    /// [`CertaintyEngine::nu`] plus the rewrite trace (`None` on the
    /// unrewritten pipeline) — the batch engine aggregates the traces
    /// into [`BatchStats::rewrite`].
    fn nu_traced(
        &self,
        phi: &QfFormula,
    ) -> Result<(CertaintyEstimate, Option<RewriteTrace>), MeasureError> {
        if self.options.rewrite.enabled {
            let (est, trace) = measure_rewritten(phi, &self.options)?;
            return Ok((est, Some(trace)));
        }
        let est = match self.options.method {
            MethodChoice::Auto => {
                let simplified = ae_simplify(phi);
                match try_exact(&simplified, self.options.exact_order_limit) {
                    Some(exact) => exact,
                    None => afpras_estimate(&simplified, &self.options.afpras)?,
                }
            }
            MethodChoice::Afpras => afpras_estimate(phi, &self.options.afpras)?,
            MethodChoice::Fpras => fpras_estimate(phi, &self.options.fpras)?,
            MethodChoice::ExactOnly => try_exact(&ae_simplify(phi), self.options.exact_order_limit)
                .ok_or(MeasureError::ExactUnavailable {
                    reason: "formula is not order/2-D-linear and has dimension > 1",
                })?,
        };
        Ok((est, None))
    }

    /// `μ(q, D, candidate)`: grounds (Proposition 5.3) and measures.
    ///
    /// Generic queries short-circuit through the zero-one law under
    /// [`MethodChoice::Auto`].
    pub fn measure(
        &self,
        query: &Query,
        db: &Database,
        candidate: &Tuple,
    ) -> Result<CertaintyEstimate, MeasureError> {
        if self.options.method == MethodChoice::Auto && query.fragment().is_generic() {
            return Ok(zero_one_measure(query, db, candidate)?);
        }
        let phi = ground::ground(query, db, candidate)?;
        self.nu(&phi)
    }

    /// Candidate answers with certainties for a **conjunctive** query,
    /// via the join executor (the §9 pipeline). Candidates flagged
    /// `certain` by the executor get μ = 1 without sampling.
    pub fn answers(
        &self,
        query: &Query,
        db: &Database,
    ) -> Result<Vec<AnswerWithCertainty>, MeasureError> {
        let candidates = cq::execute(query, db, &self.options.cq)?;
        self.measure_candidates(candidates)
    }

    /// Candidate answers for **any** query: conjunctive queries take the
    /// join-executor fast path, everything else falls back to
    /// active-domain head enumeration (returning candidates with
    /// μ > `min_certainty`). The fallback is exponential in head arity
    /// and quantifier count — fine for the small databases where
    /// non-conjunctive queries are typically analyzed.
    pub fn answers_auto(
        &self,
        query: &Query,
        db: &Database,
        min_certainty: f64,
    ) -> Result<Vec<AnswerWithCertainty>, MeasureError> {
        if query.fragment().conjunctive {
            let mut answers = self.answers(query, db)?;
            answers.retain(|a| exceeds_min_certainty(&a.certainty, min_certainty));
            Ok(answers)
        } else {
            self.answers_enumerated(query, db, min_certainty)
        }
    }

    /// Measures a batch of pre-computed candidates through the batch
    /// engine, returning per-candidate answers in input order (the
    /// accounting of [`CertaintyEngine::measure_batch`] is dropped).
    pub fn measure_candidates(
        &self,
        candidates: Vec<CandidateAnswer>,
    ) -> Result<Vec<AnswerWithCertainty>, MeasureError> {
        Ok(self.measure_batch(candidates)?.answers)
    }

    /// The cache key granularity for a canonical formula under the
    /// engine's method. The structural key is bit-safe everywhere; the
    /// coarser asymptotic key is used only on the *sampling* route,
    /// where asymptotic-truth-equal formulas evaluate identically per
    /// direction (see `qarith_constraints::canonical`). The geometric
    /// FPRAS and the exact evaluators keep the structural key: their
    /// `f64` intermediates are scale-sensitive. Keys are prefixed so the
    /// granularities never collide.
    ///
    /// With rewriting enabled the key is computed on the **rewritten**
    /// form (re-canonicalized, since simplification can drop variables):
    /// that is what gets measured, so that is what identifies the
    /// result. On the `Auto`/`Afpras` routes the rewritten pipeline uses
    /// the asymptotic granularity throughout: sampled residuals evaluate
    /// per-direction limit truth (invariant across an asymptotic class),
    /// and the factor evaluators the decomposition routes to are
    /// asymptotically determined too — the order-fragment and
    /// dimension-≤1 evaluators return the identical rational for every
    /// class member, and the 2-D arc evaluator computes the identical
    /// arc set, so members can differ from a standalone evaluation at
    /// most in the final ulp of the closed-form `f64` (the shared value
    /// is the class representative's; the ε guarantee is unaffected).
    /// `Fpras`/`ExactOnly` keep the structural key, as without
    /// rewriting. The rewritten prefixes (`ra:`/`rs:`) are distinct from
    /// the plain ones on top of the fingerprint separation.
    fn prepare_group(&self, canon: &Canonical) -> (String, Option<Box<RewriteOutcome>>) {
        if self.options.rewrite.enabled {
            let out = Rewriter::new(self.options.rewrite).rewrite(&canon.formula);
            // Re-renumber after simplification (it can drop variables);
            // the `ra:` route skips the structural-key serialization.
            let key = match self.options.method {
                MethodChoice::Auto | MethodChoice::Afpras => {
                    format!(
                        "ra:{}",
                        canonical::asymptotic_key_of(&canonical::renumbered(&out.formula))
                    )
                }
                MethodChoice::Fpras | MethodChoice::ExactOnly => {
                    format!("rs:{}", canonical::canonicalize(&out.formula).structural_key)
                }
            };
            return (key, Some(Box::new(out)));
        }
        let sampling = match self.options.method {
            MethodChoice::Afpras => true,
            MethodChoice::Fpras | MethodChoice::ExactOnly => false,
            MethodChoice::Auto => {
                !exact_applicable(&ae_simplify(&canon.formula), self.options.exact_order_limit)
            }
        };
        let key = if sampling {
            format!("a:{}", canon.asymptotic_key())
        } else {
            format!("s:{}", canon.structural_key)
        };
        (key, None)
    }

    /// The single-worker fan-out for sampling-routed plans: every
    /// pending group headed for the AFPRAS sampler is measured through
    /// **one** [`estimate_nu_compiled_many`] call, so direction
    /// generation is shared across groups whose sampled dimensions
    /// coincide (the blocked-kernel layout), instead of one
    /// compile-and-sample pass per group. `Auto` groups that an exact
    /// evaluator covers are resolved inline, exactly as
    /// [`CertaintyEngine::nu`] would.
    ///
    /// Bit-pinning: `estimate_nu_compiled_many` is direction-for-
    /// direction identical to independent per-formula calls (its own
    /// contract), the inline exact route is the literal `Auto` arm of
    /// [`CertaintyEngine::nu_traced`], and the estimate construction
    /// matches [`afpras_estimate`] field for field — so this route
    /// changes cost, never bits (pinned by
    /// `shared_fanout_is_bit_identical_and_counted`).
    ///
    /// Returns `false` — leaving `results` untouched — when the route
    /// does not apply: rewriting on (groups carry prepared
    /// decompositions), a non-sampling method, or invalid AFPRAS
    /// options (the per-group loop then surfaces the error with its
    /// usual first-in-candidate-order semantics).
    fn measure_pending_shared(
        &self,
        plan: &BatchPlan,
        pending: &[usize],
        results: &mut [Option<Result<CertaintyEstimate, MeasureError>>],
    ) -> bool {
        if self.options.rewrite.enabled
            || !matches!(self.options.method, MethodChoice::Auto | MethodChoice::Afpras)
            || self.options.afpras.validate().is_err()
        {
            return false;
        }
        let mut sampled: Vec<usize> = Vec::new();
        let mut compiled: Vec<CompiledFormula> = Vec::new();
        let mut inline: Vec<(usize, CertaintyEstimate)> = Vec::new();
        for &gi in pending {
            // With rewriting off every group is a bare formula, but the
            // invariant lives in `prepare_group`, so stay defensive.
            let Work::Formula(phi) = &plan.groups[gi].0 else { return false };
            match self.options.method {
                MethodChoice::Afpras => {
                    sampled.push(gi);
                    compiled.push(CompiledFormula::compile(phi));
                }
                MethodChoice::Auto => {
                    let simplified = ae_simplify(phi);
                    match try_exact(&simplified, self.options.exact_order_limit) {
                        Some(exact) => inline.push((gi, exact)),
                        None => {
                            sampled.push(gi);
                            compiled.push(CompiledFormula::compile(&simplified));
                        }
                    }
                }
                MethodChoice::Fpras | MethodChoice::ExactOnly => return false,
            }
        }
        for (gi, exact) in inline {
            results[gi] = Some(Ok(exact));
        }
        if !sampled.is_empty() {
            let refs: Vec<&CompiledFormula> = compiled.iter().collect();
            let outcomes = estimate_nu_compiled_many(&refs, &self.options.afpras);
            self.shared_sampling.calls.fetch_add(1, Ordering::Relaxed);
            self.shared_sampling.groups.fetch_add(sampled.len() as u64, Ordering::Relaxed);
            for (&gi, out) in sampled.iter().zip(outcomes) {
                results[gi] = Some(Ok(CertaintyEstimate {
                    value: out.estimate,
                    exact: None,
                    method: Method::Afpras,
                    epsilon: Some(self.options.afpras.epsilon),
                    delta: Some(self.options.afpras.delta),
                    samples: out.samples,
                    dimension: out.dimension,
                    cached: false,
                    rewritten: false,
                }));
            }
        }
        true
    }

    /// One unit of batch work: bare formulas route through
    /// [`CertaintyEngine::nu`]'s method selection, prepared rewrite
    /// outcomes go straight to the decomposed measurement.
    fn measure_work(
        &self,
        work: &Work,
    ) -> Result<(CertaintyEstimate, Option<RewriteTrace>), MeasureError> {
        match work {
            Work::Formula(phi) => self.nu_traced(phi),
            Work::Prepared(out) => {
                measure_prepared(out, &self.options).map(|(est, trace)| (est, Some(trace)))
            }
        }
    }

    /// Measures a batch of candidates with canonical deduplication, the
    /// ν-cache, and parallel fan-out over unique formulas.
    ///
    /// Pipeline per call:
    ///
    /// 1. every uncertain candidate's ground formula is canonicalized
    ///    (`qarith_constraints::canonical`) and grouped by cache key;
    /// 2. groups found in the engine's [`NuCache`] are served directly;
    /// 3. the remaining unique formulas are measured concurrently by
    ///    [`BatchOptions::threads`] scoped workers, each running the
    ///    engine's configured method — one `CompiledFormula` per unique
    ///    formula instead of one per candidate;
    /// 4. per-candidate results are rehydrated in input order, with
    ///    [`CertaintyEstimate::cached`] marking values that were shared
    ///    rather than recomputed.
    ///
    /// For a fixed seed the answers are **bit-identical** to the plain
    /// sequential per-candidate loop (`dedup: false, threads: 1`): the
    /// measured representative is the structural canonical form, which
    /// every evaluator treats exactly like the original formula, and
    /// asymptotic grouping is restricted to the sampling route where
    /// group members evaluate identically at every direction
    /// (`tests/method_consistency.rs` locks this in). Errors surface as
    /// the first failing candidate's error, as in the sequential loop.
    pub fn measure_batch(
        &self,
        candidates: Vec<CandidateAnswer>,
    ) -> Result<BatchOutcome, MeasureError> {
        let plan = self.prepare_batch(candidates);
        let (results, stats) = self.run_plan(&plan, None);
        // Single-shot: the plan is discarded, so the candidates move out
        // of it instead of being cloned.
        let BatchPlan { candidates, slots, .. } = plan;
        rehydrate(candidates.into_iter(), &slots, results, stats)
    }

    /// The front half of [`CertaintyEngine::measure_batch`], runnable
    /// once per query template: canonicalize every uncertain candidate,
    /// dedup into groups, build cache keys, and (with rewriting on)
    /// prepare the per-class rewrite outcome. The resulting
    /// [`BatchPlan`] contains no measurements — execute it with
    /// [`CertaintyEngine::execute_plan`], as often as needed.
    pub fn prepare_batch(&self, candidates: Vec<CandidateAnswer>) -> BatchPlan {
        self.prepare_batch_traced(candidates, None)
    }

    /// [`CertaintyEngine::prepare_batch`] with an optional stage sink:
    /// when `sink` is given, the elapsed preparation time is recorded
    /// under [`Stage::Prepare`]. Timing is **observational only** — the
    /// duration flows into the sink and nowhere else, so the returned
    /// plan is bit-identical with or without a sink (the sink is not
    /// consulted, only written).
    pub fn prepare_batch_traced(
        &self,
        candidates: Vec<CandidateAnswer>,
        sink: Option<&mut (dyn StageSink + '_)>,
    ) -> BatchPlan {
        // analyze: allow(nondet-source, reason = "observational span timing: the instant flows only into the StageSink, never into plan or measurement state; read-back from pinned code is barred by the trace-flow lint")
        let begun = sink.is_some().then(std::time::Instant::now);
        let plan = self.prepare_batch_inner(candidates);
        if let (Some(sink), Some(begun)) = (sink, begun) {
            sink.record_stage(Stage::Prepare, observed_nanos(begun));
        }
        plan
    }

    fn prepare_batch_inner(&self, candidates: Vec<CandidateAnswer>) -> BatchPlan {
        // Groups: the work to measure (the structural canonical form
        // when dedup is on — bit-identical to the member formulas — or
        // the original formula verbatim when dedup is off; with
        // rewriting enabled, the per-class prepared rewrite outcome)
        // plus the ν-cache key (`None` with dedup off: nothing is
        // shared).
        let mut groups: Vec<(Work, Option<String>)> = Vec::new();
        let mut by_key: HashMap<String, usize> = HashMap::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(candidates.len());
        let (mut certain, mut dedup_hits) = (0, 0);
        // Structural interning memoizes canonicalization across literal
        // repeats; route selection (simplification + key build — the
        // whole rewrite pipeline when enabled) runs once per structural
        // class, not per candidate.
        let mut interner = canonical::FormulaInterner::new();
        let mut key_of_class: HashMap<u32, (String, Option<Box<RewriteOutcome>>)> = HashMap::new();

        for cand in &candidates {
            if cand.certain {
                certain += 1;
                slots.push(Slot::Certain);
                continue;
            }
            if !self.options.batch.dedup {
                groups.push((Work::Formula(Arc::clone(&cand.formula)), None));
                slots.push(Slot::Group(groups.len() - 1, true));
                continue;
            }
            let class = interner.intern(&cand.formula);
            let key = key_of_class
                .entry(class)
                .or_insert_with(|| self.prepare_group(interner.get(class)))
                .0
                .clone();
            match by_key.entry(key) {
                Entry::Occupied(e) => {
                    dedup_hits += 1;
                    slots.push(Slot::Group(*e.get(), false));
                }
                Entry::Vacant(e) => {
                    // The prepared outcome is cloned only here — once per
                    // group, not per candidate (dedup hits need the key
                    // alone).
                    let work = match &key_of_class[&class].1 {
                        Some(out) => Work::Prepared(out.clone()),
                        None => Work::Formula(Arc::new(interner.get(class).formula.clone())),
                    };
                    groups.push((work, Some(e.key().clone())));
                    e.insert(groups.len() - 1);
                    slots.push(Slot::Group(groups.len() - 1, true));
                }
            }
        }
        BatchPlan { candidates, slots, groups, certain, dedup_hits }
    }

    /// The back half of [`CertaintyEngine::measure_batch`]: look every
    /// plan group up in the engine's ν-cache, measure the misses
    /// concurrently, publish fresh results, and rehydrate per-candidate
    /// answers (cloned out of the plan, which remains reusable).
    ///
    /// Estimates are **bit-identical** to
    /// [`CertaintyEngine::measure_batch`] over the same candidates with
    /// the same options — the plan *is* that call's front half — and
    /// therefore also to the plain sequential loop (see
    /// [`CertaintyEngine::measure_batch`]). Cache state only shifts
    /// work between lookup and recomputation.
    pub fn execute_plan(&self, plan: &BatchPlan) -> Result<BatchOutcome, MeasureError> {
        self.execute_plan_traced(plan, None)
    }

    /// [`CertaintyEngine::execute_plan`] with an optional stage sink:
    /// when `sink` is given, the ν-cache consultation, the measurement
    /// fan-out, and the rehydration pass record their durations under
    /// [`Stage::NuLookup`], [`Stage::Measure`], and
    /// [`Stage::Rehydrate`]. Timing is **observational only**: the
    /// sink is written, never read, so estimates stay bit-identical to
    /// the untraced call (the determinism contract of
    /// [`CertaintyEngine::execute_plan`] is unchanged).
    pub fn execute_plan_traced(
        &self,
        plan: &BatchPlan,
        mut sink: Option<&mut (dyn StageSink + '_)>,
    ) -> Result<BatchOutcome, MeasureError> {
        let (results, stats) = self.run_plan(plan, sink.as_deref_mut());
        // analyze: allow(nondet-source, reason = "observational span timing: the instant flows only into the StageSink, never into the rehydrated answers; read-back from pinned code is barred by the trace-flow lint")
        let begun = sink.is_some().then(std::time::Instant::now);
        let outcome = rehydrate(plan.candidates.iter().cloned(), &plan.slots, results, stats);
        if let (Some(sink), Some(begun)) = (sink, begun) {
            sink.record_stage(Stage::Rehydrate, observed_nanos(begun));
        }
        outcome
    }

    /// Shared back half: cache lookups, fan-out measurement of the
    /// misses, trace aggregation, cache publication. Returns per-group
    /// results (in plan group order) plus the filled-in stats. The
    /// optional sink receives the ν-lookup and measurement durations;
    /// it is write-only (see [`CertaintyEngine::execute_plan_traced`]).
    #[allow(clippy::type_complexity)]
    fn run_plan(
        &self,
        plan: &BatchPlan,
        mut sink: Option<&mut (dyn StageSink + '_)>,
    ) -> (Vec<Option<Result<CertaintyEstimate, MeasureError>>>, BatchStats) {
        let fingerprint = self.options.fingerprint();
        let mut stats = BatchStats {
            candidates: plan.candidates.len(),
            certain: plan.certain,
            groups: plan.groups.len(),
            dedup_hits: plan.dedup_hits,
            threads: self.options.batch.threads.max(1),
            ..BatchStats::default()
        };

        // Consult the cache per group, against *current* cache state
        // (plans outlive batches; a key missed on one execution can hit
        // on the next).
        // analyze: allow(nondet-source, reason = "observational span timing: the instant flows only into the StageSink, never into cache decisions or estimates; read-back from pinned code is barred by the trace-flow lint")
        let lookup_begun = sink.is_some().then(std::time::Instant::now);
        let mut results: Vec<Option<Result<CertaintyEstimate, MeasureError>>> =
            Vec::with_capacity(plan.groups.len());
        for (_, key) in &plan.groups {
            let served = match (self.cache.as_ref(), key) {
                (Some(cache), Some(key)) => cache.get(key, fingerprint),
                _ => None,
            };
            if let Some(mut est) = served {
                est.cached = true;
                stats.cache_hits += 1;
                results.push(Some(Ok(est)));
            } else {
                results.push(None);
            }
        }
        if let (Some(sink), Some(begun)) = (sink.as_deref_mut(), lookup_begun) {
            sink.record_stage(Stage::NuLookup, observed_nanos(begun));
        }
        // analyze: allow(nondet-source, reason = "observational span timing: the instant flows only into the StageSink, never into worker scheduling or estimates; read-back from pinned code is barred by the trace-flow lint")
        let measure_begun = sink.is_some().then(std::time::Instant::now);

        // Fan the not-yet-known groups out across scoped workers. The
        // configured width is additionally capped at the machine's
        // parallelism: extra workers on fewer cores only add spawn
        // overhead (results are per-group and deterministic either way,
        // so the cap cannot change bits).
        let pending: Vec<usize> =
            results.iter().enumerate().filter_map(|(i, r)| r.is_none().then_some(i)).collect();
        stats.measured = pending.len();
        // analyze: allow(nondet-source, reason = "worker-count cap affects scheduling only; per-group results are bit-identical at any width, tested by batch_matches_sequential_bitwise")
        let parallelism = std::thread::available_parallelism().map_or(usize::MAX, usize::from);
        let threads = stats.threads.min(parallelism).min(pending.len().max(1));
        let mut traces: Vec<Option<RewriteTrace>> = vec![None; plan.groups.len()];
        if threads <= 1 {
            if !self.measure_pending_shared(plan, &pending, &mut results) {
                for &gi in &pending {
                    let result = self.measure_work(&plan.groups[gi].0);
                    let failed = result.is_err();
                    results[gi] = Some(result.map(|(est, trace)| {
                        traces[gi] = trace;
                        est
                    }));
                    if failed {
                        // Groups are in first-occurrence order, so this error
                        // is the first one in candidate order: later groups
                        // would be discarded anyway.
                        break;
                    }
                }
            }
        } else {
            // Atomic work queue: formulas have heterogeneous cost
            // (dimension-dependent sample loops), so workers pop the next
            // pending group instead of owning a static chunk. Results are
            // per-group, hence deterministic regardless of which worker
            // measures what.
            type Traced = Result<(CertaintyEstimate, Option<RewriteTrace>), MeasureError>;
            let next = std::sync::atomic::AtomicUsize::new(0);
            let (groups, pending, next) = (&plan.groups, &pending, &next);
            let fresh: Vec<Vec<(usize, Traced)>> = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            loop {
                                let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                let Some(&gi) = pending.get(k) else { break };
                                local.push((gi, self.measure_work(&groups[gi].0)));
                            }
                            local
                        })
                    })
                    .collect();
                workers.into_iter().map(|w| w.join().expect("batch worker")).collect()
            });
            for (gi, result) in fresh.into_iter().flatten() {
                results[gi] = Some(result.map(|(est, trace)| {
                    traces[gi] = trace;
                    est
                }));
            }
        }
        for trace in traces.iter().flatten() {
            stats.rewrite.absorb(trace);
        }

        // Publish fresh results to the persistent cache.
        if let Some(cache) = self.cache.as_ref() {
            for &gi in &pending {
                if let (Some(Ok(est)), Some(key)) = (&results[gi], &plan.groups[gi].1) {
                    cache.insert(key.clone(), fingerprint, est.clone());
                }
            }
        }
        if let (Some(sink), Some(begun)) = (sink, measure_begun) {
            sink.record_stage(Stage::Measure, observed_nanos(begun));
        }
        (results, stats)
    }

    /// Candidate answers for an **arbitrary** FO(+,·,<) query by
    /// active-domain enumeration of head tuples (exponential in the head
    /// arity — intended for small databases and tests; conjunctive
    /// queries should use [`CertaintyEngine::answers`]).
    ///
    /// Returns candidates whose measure exceeds `min_certainty`.
    pub fn answers_enumerated(
        &self,
        query: &Query,
        db: &Database,
        min_certainty: f64,
    ) -> Result<Vec<AnswerWithCertainty>, MeasureError> {
        let dom = ActiveDomain::collect(db, query, &[]);
        let mut out = Vec::new();
        let mut candidate = Vec::with_capacity(query.arity());
        self.enumerate(query, db, &dom, &mut candidate, min_certainty, &mut out)?;
        Ok(out)
    }

    fn enumerate(
        &self,
        query: &Query,
        db: &Database,
        dom: &ActiveDomain,
        candidate: &mut Vec<Value>,
        min_certainty: f64,
        out: &mut Vec<AnswerWithCertainty>,
    ) -> Result<(), MeasureError> {
        let i = candidate.len();
        if i == query.arity() {
            let tuple = Tuple::new(candidate.clone());
            let phi = ground::ground(query, db, &tuple)?;
            let certainty = self.nu(&phi)?;
            if exceeds_min_certainty(&certainty, min_certainty) {
                out.push(AnswerWithCertainty { tuple, certainty, formula: Arc::new(phi) });
            }
            return Ok(());
        }
        let domain: &[Value] = match query.free_vars()[i].sort {
            Sort::Base => dom.base(),
            Sort::Num => dom.num(),
        };
        for v in domain {
            candidate.push(v.clone());
            self.enumerate(query, db, dom, candidate, min_certainty, out)?;
            candidate.pop();
        }
        Ok(())
    }

    /// Certain answers in the classical sense, for *generic* queries:
    /// the tuples with μ = 1 by the zero-one law (i.e. naive evaluation,
    /// §2). Errors on queries with arithmetic, where naive evaluation is
    /// unsound.
    pub fn naive_answers(&self, query: &Query, db: &Database) -> Result<Vec<Tuple>, MeasureError> {
        Ok(naive::evaluate(query, db)?)
    }
}

/// Saturating nanoseconds since a span start, for [`StageSink`]
/// recording (observational only; see the pragma'd call sites).
fn observed_nanos(begun: std::time::Instant) -> u64 {
    u64::try_from(begun.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Rehydrates per-candidate answers in input order from per-group
/// results; the first error in candidate order aborts, matching the
/// sequential loop.
fn rehydrate(
    candidates: impl Iterator<Item = CandidateAnswer>,
    slots: &[Slot],
    mut results: Vec<Option<Result<CertaintyEstimate, MeasureError>>>,
    stats: BatchStats,
) -> Result<BatchOutcome, MeasureError> {
    let mut answers = Vec::with_capacity(slots.len());
    for (cand, slot) in candidates.zip(slots) {
        let certainty = match *slot {
            Slot::Certain => CertaintyEstimate::exact_rational(Rational::ONE, 0),
            Slot::Group(gi, first) => match &results[gi] {
                Some(Ok(est)) => {
                    let mut est = est.clone();
                    // Dedup-served members share the group's value
                    // instead of recomputing; cache-served groups arrive
                    // pre-flagged from `run_plan`.
                    est.cached |= !first;
                    est
                }
                Some(Err(_)) => {
                    return Err(results[gi].take().expect("checked").expect_err("is error"));
                }
                // Only reachable past an early error break, and the
                // erroring group's first candidate precedes every
                // unmeasured group's candidates, so the Err branch
                // above returns first.
                None => unreachable!("unmeasured group after error return"),
            },
        };
        answers.push(AnswerWithCertainty { tuple: cand.tuple, certainty, formula: cand.formula });
    }
    Ok(BatchOutcome { answers, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_query::{Arg, BaseTerm, CompareOp, Formula, NumTerm, TypedVar};
    use qarith_types::{Column, NumNullId, Relation, RelationSchema};

    fn db_single_pair() -> Database {
        // R(a: base, x: num, y: num) with one all-null numeric pair — the
        // paper's σ_{A>B}(R) motivating example.
        let mut db = Database::new();
        let schema =
            RelationSchema::new("R", vec![Column::base("a"), Column::num("x"), Column::num("y")])
                .unwrap();
        let mut r = Relation::empty(schema);
        r.insert_values(vec![
            Value::int(1),
            Value::NumNull(NumNullId(0)),
            Value::NumNull(NumNullId(1)),
        ])
        .unwrap();
        db.add_relation(r).unwrap();
        db
    }

    fn select_a_gt_b(db: &Database) -> Query {
        Query::new(
            vec![TypedVar::base("a")],
            Formula::exists(
                vec![TypedVar::num("x"), TypedVar::num("y")],
                Formula::and(vec![
                    Formula::rel(
                        "R",
                        vec![
                            Arg::Base(BaseTerm::var("a")),
                            Arg::Num(NumTerm::var("x")),
                            Arg::Num(NumTerm::var("y")),
                        ],
                    ),
                    Formula::cmp(NumTerm::var("x"), CompareOp::Gt, NumTerm::var("y")),
                ]),
            ),
            &db.catalog(),
        )
        .unwrap()
    }

    #[test]
    fn sigma_a_gt_b_has_measure_one_half() {
        // The paper's intro: "with probability 1/2 the tuple will be in
        // the answer".
        let db = db_single_pair();
        let q = select_a_gt_b(&db);
        let engine = CertaintyEngine::default();
        let est = engine.measure(&q, &db, &Tuple::new(vec![Value::int(1)])).unwrap();
        assert_eq!(est.exact, Some(Rational::new(1, 2)));
    }

    #[test]
    fn answers_pipeline_cq() {
        let db = db_single_pair();
        let q = select_a_gt_b(&db);
        let engine = CertaintyEngine::default();
        let answers = engine.answers(&q, &db).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].tuple, Tuple::new(vec![Value::int(1)]));
        assert_eq!(answers[0].certainty.exact, Some(Rational::new(1, 2)));
    }

    #[test]
    fn enumerated_answers_match_cq_answers() {
        let db = db_single_pair();
        let q = select_a_gt_b(&db);
        let engine = CertaintyEngine::default();
        let via_cq = engine.answers(&q, &db).unwrap();
        let via_enum = engine.answers_enumerated(&q, &db, 0.0).unwrap();
        assert_eq!(via_cq.len(), via_enum.len());
        assert_eq!(via_cq[0].tuple, via_enum[0].tuple);
        assert_eq!(via_cq[0].certainty.exact, via_enum[0].certainty.exact);
    }

    #[test]
    fn method_choices_are_respected() {
        let db = db_single_pair();
        let q = select_a_gt_b(&db);
        let t = Tuple::new(vec![Value::int(1)]);

        let exact_only = CertaintyEngine::new(MeasureOptions {
            method: MethodChoice::ExactOnly,
            ..MeasureOptions::default()
        });
        assert!(exact_only.measure(&q, &db, &t).unwrap().exact.is_some());

        let afpras = CertaintyEngine::new(MeasureOptions {
            method: MethodChoice::Afpras,
            ..MeasureOptions::default()
        });
        let est = afpras.measure(&q, &db, &t).unwrap();
        assert!(est.exact.is_none());
        assert!((est.value - 0.5).abs() < 0.1);

        let fpras = CertaintyEngine::new(MeasureOptions {
            method: MethodChoice::Fpras,
            ..MeasureOptions::default()
        });
        let est = fpras.measure(&q, &db, &t).unwrap();
        assert!((est.value - 0.5).abs() < 0.1);
    }

    fn uncertain_candidate(formula: QfFormula, id: i64) -> CandidateAnswer {
        CandidateAnswer {
            tuple: Tuple::new(vec![Value::int(id)]),
            formula: Arc::new(formula),
            derivations: 1,
            certain: false,
            truncated: false,
        }
    }

    /// μ-relevant fields only (`cached` is provenance, not identity).
    fn fingerprint_of(est: &CertaintyEstimate) -> (u64, Option<Rational>, usize, usize) {
        (est.value.to_bits(), est.exact, est.samples, est.dimension)
    }

    fn renamed_pair() -> (CandidateAnswer, CandidateAnswer) {
        use qarith_constraints::{Atom, ConstraintOp, Polynomial, Var};
        // Same shape over different nulls and different constants: the
        // asymptotic key merges them on the sampling route.
        let mk = |v: u32, c: i64| {
            QfFormula::atom(Atom::new(
                Polynomial::var(Var(v)) - Polynomial::constant(Rational::from_int(c)),
                ConstraintOp::Gt,
            ))
        };
        (uncertain_candidate(mk(3, 27), 1), uncertain_candidate(mk(9, 31), 2))
    }

    #[test]
    fn batch_dedups_renamed_formulas_on_the_sampling_route() {
        let (a, b) = renamed_pair();
        let engine = CertaintyEngine::new(MeasureOptions {
            method: MethodChoice::Afpras,
            ..MeasureOptions::default()
        });
        let outcome = engine.measure_batch(vec![a, b]).unwrap();
        assert_eq!(outcome.stats.candidates, 2);
        assert_eq!(outcome.stats.groups, 1, "one canonical class");
        assert_eq!(outcome.stats.dedup_hits, 1);
        assert_eq!(outcome.stats.measured, 1);
        assert!(!outcome.answers[0].certainty.cached);
        assert!(outcome.answers[1].certainty.cached, "second member is served, not recomputed");
        assert_eq!(
            fingerprint_of(&outcome.answers[0].certainty),
            fingerprint_of(&outcome.answers[1].certainty),
        );
    }

    #[test]
    fn batch_matches_sequential_bitwise() {
        let (a, b) = renamed_pair();
        for method in [MethodChoice::Auto, MethodChoice::Afpras, MethodChoice::Fpras] {
            let options = MeasureOptions { method, ..MeasureOptions::default() };
            let sequential = CertaintyEngine::new(MeasureOptions {
                batch: BatchOptions { threads: 1, dedup: false },
                ..options.clone()
            });
            let batched = CertaintyEngine::new(MeasureOptions {
                batch: BatchOptions { threads: 4, dedup: true },
                ..options
            });
            let s = sequential.measure_candidates(vec![a.clone(), b.clone()]).unwrap();
            let p = batched.measure_candidates(vec![a.clone(), b.clone()]).unwrap();
            for (x, y) in s.iter().zip(&p) {
                assert_eq!(
                    fingerprint_of(&x.certainty),
                    fingerprint_of(&y.certainty),
                    "{method:?}"
                );
            }
        }
    }

    #[test]
    fn shared_fanout_is_bit_identical_and_counted() {
        use qarith_constraints::{Atom, ConstraintOp, Polynomial, Var};
        let atom = |p: Polynomial| QfFormula::atom(Atom::new(p, ConstraintOp::Gt));
        let z = |i: u32| Polynomial::var(Var(i));
        // Four distinct canonical classes: one 1-D, one 2-D linear
        // (exact-applicable under Auto), two 2-D nonlinear sharing a
        // sampled dimension.
        let candidates = vec![
            uncertain_candidate(atom(z(0)), 1),
            uncertain_candidate(atom(z(0) + z(1)), 2),
            uncertain_candidate(atom(z(0) * z(1)), 3),
            uncertain_candidate(atom(z(0) * z(1) + z(0)), 4),
        ];

        for method in [MethodChoice::Afpras, MethodChoice::Auto] {
            let options = MeasureOptions { method, ..MeasureOptions::default() };
            let shared = CertaintyEngine::new(MeasureOptions {
                batch: BatchOptions { threads: 1, dedup: true },
                ..options.clone()
            });
            // The reference: the plain single-formula route, which
            // never touches the batch fan-out.
            let reference = CertaintyEngine::new(options);
            let s = shared.measure_batch(candidates.clone()).unwrap();
            assert_eq!(s.stats.groups, 4, "{method:?}: four canonical classes");
            for (x, cand) in s.answers.iter().zip(&candidates) {
                let direct = reference.nu(&cand.formula).unwrap();
                assert_eq!(
                    fingerprint_of(&x.certainty),
                    fingerprint_of(&direct),
                    "{method:?}: shared fan-out must not change a bit"
                );
            }
            // One many-call covered every sampled group; Auto resolved
            // the 1-D and 2-D-linear classes exactly, inline.
            let expected_groups = if method == MethodChoice::Afpras { 4 } else { 2 };
            assert_eq!(shared.shared_sampling_stats(), (1, expected_groups), "{method:?}");
            assert_eq!(reference.shared_sampling_stats(), (0, 0), "{method:?}: single route");
            if method == MethodChoice::Auto {
                assert!(s.answers[0].certainty.exact.is_some(), "1-D class routed exact");
                assert!(s.answers[2].certainty.exact.is_none(), "nonlinear class sampled");
            }
        }
    }

    #[test]
    fn nu_cache_serves_across_batches() {
        let (a, b) = renamed_pair();
        let cache = std::sync::Arc::new(NuCache::new());
        let engine = CertaintyEngine::new(MeasureOptions {
            method: MethodChoice::Afpras,
            ..MeasureOptions::default()
        })
        .with_cache(cache.clone());

        let first = engine.measure_batch(vec![a.clone()]).unwrap();
        assert_eq!(first.stats.cache_hits, 0);
        let second = engine.measure_batch(vec![b.clone()]).unwrap();
        assert_eq!(second.stats.cache_hits, 1, "served from the persistent cache");
        assert_eq!(second.stats.measured, 0);
        assert!(second.answers[0].certainty.cached);
        assert_eq!(
            fingerprint_of(&first.answers[0].certainty),
            fingerprint_of(&second.answers[0].certainty),
        );
        assert_eq!(cache.stats().entries, 1);

        // A different ε is a different fingerprint: no false sharing.
        let other = CertaintyEngine::new(
            MeasureOptions { method: MethodChoice::Afpras, ..MeasureOptions::default() }
                .with_epsilon(0.03),
        )
        .with_cache(cache.clone());
        let third = other.measure_batch(vec![a]).unwrap();
        assert_eq!(third.stats.cache_hits, 0);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn batch_handles_certain_and_errors() {
        use qarith_constraints::{Atom, ConstraintOp, Polynomial, Var};
        let certain = CandidateAnswer {
            tuple: Tuple::new(vec![Value::int(0)]),
            formula: Arc::new(QfFormula::True),
            derivations: 0,
            certain: true,
            truncated: false,
        };
        let nonlinear = uncertain_candidate(
            QfFormula::atom(Atom::new(
                Polynomial::var(Var(0)) * Polynomial::var(Var(1)),
                ConstraintOp::Lt,
            )),
            1,
        );
        // FPRAS rejects nonlinear formulas: the batch surfaces the error.
        let engine = CertaintyEngine::new(MeasureOptions {
            method: MethodChoice::Fpras,
            ..MeasureOptions::default()
        });
        let err = engine.measure_batch(vec![certain.clone(), nonlinear]).unwrap_err();
        assert!(matches!(err, MeasureError::NotLinear));
        // Certain candidates never sample.
        let ok = engine.measure_batch(vec![certain]).unwrap();
        assert_eq!(ok.stats.certain, 1);
        assert_eq!(ok.stats.groups, 0);
        assert!(ok.answers[0].certainty.is_certain());
    }

    #[test]
    fn min_certainty_predicate_is_strict() {
        let half = CertaintyEstimate::exact_rational(Rational::new(1, 2), 1);
        assert!(exceeds_min_certainty(&half, 0.0));
        assert!(exceeds_min_certainty(&half, 0.49));
        assert!(!exceeds_min_certainty(&half, 0.5), "boundary is excluded");
        let zero = CertaintyEstimate::exact_rational(Rational::ZERO, 0);
        assert!(!exceeds_min_certainty(&zero, 0.0), "impossible answers drop at 0.0");
    }

    #[test]
    fn generic_queries_use_zero_one_law() {
        let db = db_single_pair();
        let q = Query::new(
            vec![TypedVar::base("a")],
            Formula::exists(
                vec![TypedVar::num("x"), TypedVar::num("y")],
                Formula::rel(
                    "R",
                    vec![
                        Arg::Base(BaseTerm::var("a")),
                        Arg::Num(NumTerm::var("x")),
                        Arg::Num(NumTerm::var("y")),
                    ],
                ),
            ),
            &db.catalog(),
        )
        .unwrap();
        let engine = CertaintyEngine::default();
        let est = engine.measure(&q, &db, &Tuple::new(vec![Value::int(1)])).unwrap();
        assert_eq!(est.method, crate::estimate::Method::ZeroOne);
        assert!(est.is_certain());
        let est = engine.measure(&q, &db, &Tuple::new(vec![Value::int(2)])).unwrap();
        assert_eq!(est.exact, Some(Rational::ZERO));
    }
}
