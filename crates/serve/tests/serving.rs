//! Serving-correctness suite: the ISSUE-5 acceptance tests.
//!
//! * concurrent-vs-sequential bit-identity — K client threads through
//!   one shared service return exactly the single-thread answers;
//! * eviction soundness — a forced tiny cache budget changes miss
//!   counts, never certainties;
//! * plan-cache behavior — whitespace/alias/literal-varied but
//!   fingerprint-equal SQL builds one plan and hits it thereafter.

use std::sync::Arc;

use qarith_core::afpras::{AfprasOptions, SampleCount};
use qarith_core::{BatchOptions, MeasureOptions, MethodChoice};
use qarith_datagen::{QueryFamily, WorkloadScale};
use qarith_serve::{QueryResponse, QueryService, ServeConfig, ShardedCacheConfig};
use qarith_types::Database;

fn tiny_db() -> Database {
    qarith_datagen::sales::sales_database(&WorkloadScale::Tiny.params(), 2020)
}

/// The serving workload: every family's queries (the same population
/// `serve_bench` replays).
fn workload_sql() -> Vec<String> {
    QueryFamily::all().iter().flat_map(QueryFamily::queries).map(|q| q.sql).collect()
}

/// Paper-style measurement options: forced AFPRAS under a fixed seed,
/// so certainty bits are sensitive to *any* pipeline difference (the
/// exact evaluators would mask ordering/caching bugs behind closed
/// forms).
fn paper_options(epsilon: f64, seed: u64) -> MeasureOptions {
    MeasureOptions {
        method: MethodChoice::Afpras,
        afpras: AfprasOptions {
            epsilon,
            samples: SampleCount::Paper,
            seed,
            ..AfprasOptions::default()
        },
        batch: BatchOptions { threads: 1, dedup: true },
        ..MeasureOptions::default()
    }
}

fn config_with_budget(budget_bytes: usize) -> ServeConfig {
    ServeConfig {
        options: paper_options(0.1, 77),
        cache: ShardedCacheConfig { shards: 4, budget_bytes },
        ..ServeConfig::default()
    }
}

/// μ-relevant response content (`cached` is provenance, not identity).
fn response_fingerprint(r: &QueryResponse) -> Vec<(String, u64, usize, usize)> {
    r.answers
        .iter()
        .map(|a| {
            (
                format!("{}", a.tuple),
                a.certainty.value.to_bits(),
                a.certainty.samples,
                a.certainty.dimension,
            )
        })
        .collect()
}

#[test]
fn concurrent_clients_match_sequential_bit_for_bit() {
    let sql = workload_sql();

    // Sequential reference: a fresh service, one thread, one pass.
    let reference_service = QueryService::new(tiny_db(), config_with_budget(64 << 20));
    let reference: Vec<_> = sql
        .iter()
        .map(|q| response_fingerprint(&reference_service.query(q).expect("reference query")))
        .collect();

    // Shared service, 4 concurrent clients × 3 passes each, every
    // response compared against the reference.
    let service = Arc::new(QueryService::new(tiny_db(), config_with_budget(64 << 20)));
    std::thread::scope(|scope| {
        for client in 0..4 {
            let (service, sql, reference) = (service.clone(), &sql, &reference);
            scope.spawn(move || {
                for pass in 0..3 {
                    for (qi, q) in sql.iter().enumerate() {
                        let response = service.query(q).expect("served query");
                        assert_eq!(
                            response_fingerprint(&response),
                            reference[qi],
                            "client {client}, pass {pass}, query {qi}: concurrent answers \
                             must be bit-identical to sequential execution"
                        );
                    }
                }
            });
        }
    });

    let stats = service.stats();
    assert_eq!(stats.queries, 4 * 3 * sql.len() as u64);
    // Every template is planned at most once per racing first-pass
    // client, and served from the plan cache afterwards.
    assert!(stats.plan_hits > 0, "repeat traffic must hit the plan cache");
    // "Unfair Discount" appears in both the sales and division
    // families, so distinct templates < distinct SQL strings.
    let distinct: std::collections::HashSet<_> =
        sql.iter().map(|q| qarith_sql::sql_fingerprint(q).expect("workload SQL parses")).collect();
    assert_eq!(stats.plans, distinct.len() as u64, "one cached plan per distinct template");
    assert!(service.cache_stats().hits > 0, "repeat traffic must hit the ν-cache");
}

#[test]
fn eviction_changes_misses_not_certainties() {
    let sql = workload_sql();
    let roomy = QueryService::new(tiny_db(), config_with_budget(64 << 20));
    // ~2 KiB across 4 shards: a few entries per shard, constant churn.
    let tight = QueryService::new(tiny_db(), config_with_budget(2 << 10));

    for pass in 0..3 {
        for q in &sql {
            let a = roomy.query(q).expect("roomy");
            let b = tight.query(q).expect("tight");
            assert_eq!(
                response_fingerprint(&a),
                response_fingerprint(&b),
                "pass {pass}: eviction may only change recompute cost, never answers"
            );
        }
    }

    let (roomy_stats, tight_stats) = (roomy.cache_stats(), tight.cache_stats());
    assert_eq!(roomy_stats.evictions, 0, "64 MiB must hold the tiny workload");
    assert!(tight_stats.evictions > 0, "a 2 KiB budget must evict");
    assert!(
        tight_stats.misses > roomy_stats.misses,
        "evicted entries surface as extra misses ({} vs {})",
        tight_stats.misses,
        roomy_stats.misses
    );
    assert!(
        tight_stats.resident_bytes <= (2 << 10),
        "the budget is a hard bound ({} bytes resident)",
        tight_stats.resident_bytes
    );
}

#[test]
fn plan_cache_hits_across_spellings() {
    let service = QueryService::new(tiny_db(), config_with_budget(64 << 20));
    let spellings = [
        "SELECT P.id FROM Products P WHERE P.rrp >= 80 AND P.dis >= 0.9 LIMIT 25",
        // Different alias, messy whitespace, lowercase keywords.
        "select  Prod.id\nfrom Products Prod\nwhere Prod.rrp >= 80 and Prod.dis >= 0.9 limit 25",
        // Different literal spelling.
        "SELECT x.id FROM Products x WHERE x.rrp >= 80.0 AND x.dis >= 0.90 LIMIT 25",
    ];
    let responses: Vec<_> =
        spellings.iter().map(|q| service.query(q).expect("spelling serves")).collect();

    assert!(!responses[0].plan_cached, "first sighting builds the plan");
    for r in &responses[1..] {
        assert!(r.plan_cached, "fingerprint-equal spellings must hit the plan cache");
        assert_eq!(r.fingerprint, responses[0].fingerprint);
        assert_eq!(response_fingerprint(r), response_fingerprint(&responses[0]));
    }
    let stats = service.stats();
    assert_eq!((stats.plan_misses, stats.plan_hits, stats.plans), (1, 2, 1));

    // A genuinely different template occupies its own slot.
    let other = service.query("SELECT P.id FROM Products P WHERE P.rrp >= 81 LIMIT 25").unwrap();
    assert!(!other.plan_cached);
    assert_ne!(other.fingerprint, responses[0].fingerprint);
    assert_eq!(service.stats().plans, 2);
}

#[test]
fn admission_gate_queues_under_load_without_changing_answers() {
    let mut config = config_with_budget(64 << 20);
    config.max_in_flight = 2;
    let service = Arc::new(QueryService::new(tiny_db(), config));
    let sql = workload_sql();
    let reference: Vec<_> =
        sql.iter().map(|q| response_fingerprint(&service.query(q).expect("reference"))).collect();

    // All clients fire simultaneously into the 2-wide gate. Whether a
    // given run *observes* queueing depends on the scheduler (release-
    // mode queries finish in ~25 µs, often inside one quantum on a
    // 1-CPU box); the deterministic queued/peak-concurrency guarantees
    // live in `qarith_serve::admission`'s unit tests, which hold
    // permits across sleeps. What this test pins is the service-level
    // contract: a saturating gate sheds nothing and never changes
    // answers.
    let start = std::sync::Barrier::new(8);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let (service, sql, reference, start) = (service.clone(), &sql, &reference, &start);
            scope.spawn(move || {
                start.wait();
                for _ in 0..3 {
                    for (qi, q) in sql.iter().enumerate() {
                        let response = service.query(q).expect("admitted and served");
                        assert_eq!(response_fingerprint(&response), reference[qi]);
                    }
                }
            });
        }
    });

    let stats = service.admission_stats();
    assert_eq!(stats.max_in_flight, 2);
    assert_eq!(stats.admitted, (8 * 3 + 1) * sql.len() as u64, "nothing is shed");
}

#[test]
fn bad_sql_is_rejected_without_poisoning_the_service() {
    let service = QueryService::new(tiny_db(), config_with_budget(64 << 20));
    assert!(service.query("DROP TABLE Products").is_err());
    assert!(service.query("SELECT nope.id FROM Products P").is_err());
    // The service keeps serving.
    let ok = service.query("SELECT P.id FROM Products P WHERE P.dis >= 0.9 LIMIT 5");
    assert!(ok.is_ok());
    assert_eq!(service.stats().queries, 3, "failed requests still count as served traffic");
}

#[test]
fn plan_cache_evicts_lru_under_its_cap_without_changing_answers() {
    let mut config = config_with_budget(64 << 20);
    config.max_plans = 2;
    let service = QueryService::new(tiny_db(), config);
    let templates = [
        "SELECT P.id FROM Products P WHERE P.dis >= 0.9 LIMIT 5",
        "SELECT P.id FROM Products P WHERE P.rrp >= 80 LIMIT 5",
        "SELECT P.seg FROM Products P WHERE P.rrp >= 20 LIMIT 5",
    ];
    let first = response_fingerprint(&service.query(templates[0]).unwrap());
    service.query(templates[1]).unwrap();
    // Touch template 0 so template 1 is the LRU victim of the third.
    assert!(service.query(templates[0]).unwrap().plan_cached);
    service.query(templates[2]).unwrap();

    let stats = service.stats();
    assert_eq!(stats.plans, 2, "the cap is a hard bound");
    assert_eq!(stats.plan_evictions, 1, "third template evicted the LRU one");
    // The survivor still hits; the victim rebuilds with identical answers.
    assert!(service.query(templates[0]).unwrap().plan_cached);
    let rebuilt = service.query(templates[1]).unwrap();
    assert!(!rebuilt.plan_cached, "evicted template rebuilds");
    assert_eq!(response_fingerprint(&service.query(templates[0]).unwrap()), first);
}

#[test]
fn invalid_query_never_hits_a_valid_templates_plan() {
    // Regression: an undeclared qualifier spelled like a canonical
    // positional alias (`t1`) must not fingerprint-collide with a valid
    // template whose second table was renamed to `t1` — a warm plan
    // cache would otherwise serve the invalid query real answers.
    let service = QueryService::new(tiny_db(), config_with_budget(64 << 20));
    let valid = "SELECT M.seg FROM Products P, Market M WHERE P.seg = M.seg LIMIT 5";
    let invalid = "SELECT t1.seg FROM Products t0, Market M WHERE t0.seg = t1.seg LIMIT 5";
    assert!(service.query(valid).is_ok());
    assert!(service.query(invalid).is_err(), "cold cache rejects the undeclared alias");
    assert!(service.query(valid).unwrap().plan_cached, "the valid template is cached by now");
    assert!(service.query(invalid).is_err(), "and the warm cache still rejects it");

    // Same property for duplicate FROM aliases: alias renaming would
    // erase the duplication, so without the `dup!` namespace this
    // lowering-rejected text would hit the valid template's plan.
    let valid_pm = "SELECT M.seg FROM Products P, Market M WHERE M.seg = M.seg LIMIT 5";
    let dup_mm = "SELECT M.seg FROM Products M, Market M WHERE M.seg = M.seg LIMIT 5";
    assert!(service.query(valid_pm).is_ok());
    assert!(service.query(dup_mm).is_err(), "cold cache rejects the duplicate alias");
    assert!(service.query(valid_pm).unwrap().plan_cached);
    assert!(service.query(dup_mm).is_err(), "and the warm cache still rejects it");
}
