//! Mutation-consistency suite: the ISSUE-10 write-path acceptance
//! tests.
//!
//! * cold-rebuild bit-identity — after *any* sequence of committed
//!   [`WriteBatch`]es (property-tested over inserts, deletes, and
//!   updates, including ones that introduce fresh nulls), every query
//!   answer from the long-lived service is bit-identical to a fresh
//!   cold-cache service built on the final database state;
//! * invalidation selectivity — a targeted single-tuple write on the
//!   medium sales database drops exactly the ν-cache keys grounded
//!   against the touched relation, leaves survivors resident (counter-
//!   asserted), and the survivors still *hit* with unchanged bits;
//! * digest cross-pin — `qarith_serve::database_digest` and
//!   `qarith_datagen::database_digest` are bit-for-bit the same
//!   function (the serving layer re-implements it to avoid the
//!   dependency; this test is the license for that duplication).

use proptest::prelude::*;
use qarith_core::afpras::{AfprasOptions, SampleCount};
use qarith_core::{BatchOptions, MeasureOptions, MethodChoice};
use qarith_datagen::WorkloadScale;
use qarith_serve::{database_digest, QueryResponse, QueryService, ServeConfig, ShardedCacheConfig};
use qarith_types::{
    Column, Database, NumNullId, Relation, RelationSchema, Value, WriteBatch, WriteOp,
};

/// Forced AFPRAS under a fixed seed, so certainty bits are sensitive to
/// any pipeline difference (exact evaluators would mask stale-cache
/// bugs behind closed forms).
fn paper_options(epsilon: f64, seed: u64) -> MeasureOptions {
    MeasureOptions {
        method: MethodChoice::Afpras,
        afpras: AfprasOptions {
            epsilon,
            samples: SampleCount::Paper,
            seed,
            ..AfprasOptions::default()
        },
        batch: BatchOptions { threads: 1, dedup: true },
        ..MeasureOptions::default()
    }
}

fn serve_config(epsilon: f64) -> ServeConfig {
    ServeConfig {
        options: paper_options(epsilon, 77),
        cache: ShardedCacheConfig { shards: 4, budget_bytes: 64 << 20 },
        ..ServeConfig::default()
    }
}

/// μ-relevant response content (`cached`/`plan_cached` are provenance,
/// not identity).
fn response_fingerprint(r: &QueryResponse) -> Vec<(String, u64, usize, usize)> {
    r.answers
        .iter()
        .map(|a| {
            (
                format!("{}", a.tuple),
                a.certainty.value.to_bits(),
                a.certainty.samples,
                a.certainty.dimension,
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Satellite: serve/datagen digest cross-pin.
// ---------------------------------------------------------------------

#[test]
fn serve_digest_is_bit_identical_to_datagen_digest() {
    for seed in [1u64, 2020, 0xF00D] {
        let db = qarith_datagen::sales::sales_database(&WorkloadScale::Tiny.params(), seed);
        assert_eq!(
            database_digest(&db),
            qarith_datagen::database_digest(&db),
            "seed {seed}: the two digest implementations diverged"
        );
    }
}

// ---------------------------------------------------------------------
// Satellite: cold-rebuild bit-identity under arbitrary write sequences.
// ---------------------------------------------------------------------

/// The proptest database: one relation with a base key and two
/// numerical columns (nulls included), small enough that random
/// deletes/updates actually collide with resident tuples.
fn proptest_db() -> Database {
    let mut db = Database::new();
    let schema =
        RelationSchema::new("R", vec![Column::base("id"), Column::num("x"), Column::num("y")])
            .unwrap();
    let mut r = Relation::empty(schema);
    r.insert_values(vec![Value::int(1), Value::num(10), Value::num(5)]).unwrap();
    r.insert_values(vec![Value::int(2), Value::NumNull(NumNullId(0)), Value::num(3)]).unwrap();
    r.insert_values(vec![Value::int(3), Value::num(4), Value::NumNull(NumNullId(1))]).unwrap();
    r.insert_values(vec![
        Value::int(4),
        Value::NumNull(NumNullId(2)),
        Value::NumNull(NumNullId(3)),
    ])
    .unwrap();
    db.add_relation(r).unwrap();
    db
}

/// Queries that mix certain and uncertain candidates over `R`.
const PROPTEST_SQL: [&str; 2] =
    ["SELECT R.id FROM R WHERE R.x > R.y", "SELECT R.id FROM R WHERE R.x + R.y >= 6"];

/// A numerical value: a small constant or a fresh-ish marked null. The
/// tight domains make duplicate inserts, hitting deletes, and
/// null-introducing updates all likely.
fn num_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-4i64..8).prop_map(Value::num),
        (0u32..6).prop_map(|i| Value::NumNull(NumNullId(i))),
    ]
}

fn tuple_r() -> impl Strategy<Value = Vec<Value>> {
    ((0i64..8), num_value(), num_value()).prop_map(|(id, x, y)| vec![Value::int(id), x, y])
}

fn write_op() -> impl Strategy<Value = WriteOp> {
    prop_oneof![
        tuple_r().prop_map(|values| WriteOp::Insert { relation: "R".into(), values }),
        tuple_r().prop_map(|values| WriteOp::Delete { relation: "R".into(), values }),
        (tuple_r(), tuple_r()).prop_map(|(old, new)| WriteOp::Update {
            relation: "R".into(),
            old,
            new
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// After every committed batch of an arbitrary sequence, the live
    /// service (with whatever plan/ν-cache state its history left
    /// behind) answers bit-identically to a cold-cache service built
    /// from scratch on the current database — and both agree on the
    /// epoch digest of a shadow copy mutated alongside.
    #[test]
    fn any_write_sequence_matches_a_cold_rebuild(
        batches in prop::collection::vec(prop::collection::vec(write_op(), 1..5), 1..4)
    ) {
        let service = QueryService::new(proptest_db(), serve_config(0.25));
        let mut shadow = proptest_db();

        // Warm the caches on epoch 0 so later batches have something
        // to invalidate.
        for sql in PROPTEST_SQL {
            service.query(sql).expect("warmup query");
        }

        for (i, ops) in batches.iter().enumerate() {
            let batch = WriteBatch::of(ops.clone());
            let outcome = service.apply(&batch).expect("well-typed batch");
            shadow.apply_batch(&batch).expect("shadow apply");

            let epoch = (i + 1) as u64;
            prop_assert_eq!(outcome.epoch, epoch, "epochs are consecutive");
            prop_assert_eq!(
                outcome.db_digest,
                database_digest(&shadow),
                "published digest names the shadow's contents"
            );
            prop_assert_eq!(service.stats().epoch, epoch);

            let cold = QueryService::new(shadow.clone(), serve_config(0.25));
            for sql in PROPTEST_SQL {
                let warm = service.query(sql).expect("warm query");
                let fresh = cold.query(sql).expect("cold query");
                prop_assert_eq!(
                    response_fingerprint(&warm),
                    response_fingerprint(&fresh),
                    "batch {}: live service diverged from a cold rebuild for {}",
                    i,
                    sql
                );
                prop_assert_eq!(warm.epoch, epoch);
                prop_assert_eq!(warm.db_digest, database_digest(&shadow));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Satellite: invalidation selectivity on the medium sales database.
// ---------------------------------------------------------------------

/// Orders templates whose candidates are uncertain by construction
/// (`q` is drawn from 1..=50, so only null-`q` tuples can satisfy the
/// predicates). The sampling route groups by the *asymptotic* key, in
/// which constants and scales vanish — so the four templates here are
/// distinguished by comparison operator and coefficient sign, which
/// the key provably preserves, minting one distinct ν-cache group key
/// per template.
const ORDERS_SQL: [&str; 2] = [
    // No LIMIT: the rebuilt plan must surface a tuple inserted at the
    // *end* of the relation, which a prefix cap would hide.
    "SELECT O.id FROM Orders O WHERE O.q >= 51",
    "SELECT O.id FROM Orders O WHERE O.q <= 0",
];

/// Market templates with the same shape (`rrp` is drawn from 1..100,
/// `market_null_rate` is high), grounded against an untouched relation
/// and keyed by strict comparisons so they share nothing with the
/// Orders templates.
const MARKET_SQL: [&str; 2] = [
    "SELECT M.seg FROM Market M WHERE M.rrp > 100 LIMIT 25",
    "SELECT M.seg FROM Market M WHERE M.rrp < 1 LIMIT 25",
];

#[test]
fn targeted_write_invalidates_selectively_and_survivors_still_hit() {
    let db = qarith_datagen::sales::sales_database(&WorkloadScale::Medium.params(), 2020);
    let service = QueryService::new(db, serve_config(0.1));

    // Warm both relation populations twice: the second pass must be
    // pure plan + ν-cache hits, and its bits are the pre-write
    // reference.
    for sql in ORDERS_SQL.iter().chain(&MARKET_SQL) {
        let first = service.query(sql).expect("warmup");
        assert!(!first.answers.is_empty(), "{sql}: nulls must produce uncertain candidates");
        assert!(
            first.answers.iter().all(|a| a.certainty.value < 1.0),
            "{sql}: candidates are uncertain by construction"
        );
    }
    let market_reference: Vec<_> = MARKET_SQL
        .iter()
        .map(|sql| response_fingerprint(&service.query(sql).expect("reference")))
        .collect();

    let before = service.cache_stats();
    assert!(before.entries >= 2, "both relations left resident ν entries: {before:?}");
    assert_eq!(before.invalidations, 0);
    let plans_before = service.stats().plans;
    assert_eq!(plans_before, 4, "four templates, four plans");

    // The targeted write: one fresh tuple into Orders (with a fresh
    // marked null — the database stays incomplete as it evolves).
    // Fresh ids live far above anything the generator minted.
    let mut batch = WriteBatch::new();
    batch.insert(
        "Orders",
        vec![Value::int(1 << 20), Value::int(7), Value::NumNull(NumNullId(1 << 20)), Value::num(1)],
    );
    let outcome = service.apply(&batch).expect("single-tuple insert");

    assert_eq!(outcome.epoch, 1);
    assert_eq!((outcome.applied, outcome.noops), (1, 0));
    assert!(outcome.invalidated_keys >= 1, "Orders keys must drop: {outcome:?}");
    assert_eq!(outcome.plans_invalidated, 2, "exactly the two Orders plans drop");

    // Counter-asserted selectivity: the survivors are exactly the
    // resident entries the write did not claim, and there are some.
    let after = service.cache_stats();
    assert_eq!(after.invalidations, outcome.invalidated_keys);
    assert_eq!(after.invalidated_entries, outcome.invalidated_entries);
    assert_eq!(
        after.entries,
        before.entries - outcome.invalidated_entries,
        "invalidation dropped exactly what it counted"
    );
    assert!(after.entries > 0, "Market entries survive a write to Orders: {after:?}");
    assert_eq!(service.stats().plans, plans_before - outcome.plans_invalidated);

    // Survivors still hit — same plan, same resident ν entries, same
    // bits as before the write.
    for (sql, reference) in MARKET_SQL.iter().zip(&market_reference) {
        let hits_before = service.cache_stats().hits;
        let response = service.query(sql).expect("survivor query");
        assert!(response.plan_cached, "{sql}: Market plan survives a write to Orders");
        assert_eq!(response.stats.measured, 0, "{sql}: nothing to re-measure");
        assert!(service.cache_stats().hits > hits_before, "{sql}: survivors hit the ν-cache");
        assert_eq!(&response_fingerprint(&response), reference, "{sql}: bits unchanged");
        assert_eq!(response.epoch, 1, "served against the new epoch");
    }

    // The touched templates rebuild against epoch 1 and see the new
    // tuple (its null `q` makes it one more uncertain candidate).
    for sql in ORDERS_SQL {
        let response = service.query(sql).expect("rebuilt query");
        assert!(!response.plan_cached, "{sql}: Orders plans were invalidated");
        assert_eq!(response.epoch, 1);
        assert!(
            response.answers.iter().any(|a| a.tuple.to_string().contains(&(1 << 20).to_string())),
            "{sql}: the inserted tuple is a candidate now"
        );
    }
}
