//! Epoch-visibility torture: N reader threads hammer one shared
//! service while a writer publishes a stream of epochs.
//!
//! The invariants (ISSUE-10):
//!
//! * **published states only** — every response's `(epoch, db_digest)`
//!   pair is exactly one the writer published (or the load-time epoch
//!   0): a reader can never observe a torn or intermediate database;
//! * **monotone visibility** — epochs observed by one reader never go
//!   backwards (the snapshot pointer only moves forward);
//! * **post-drain convergence** — once the writer is done, every
//!   reader's next request executes against the final epoch.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qarith_core::afpras::{AfprasOptions, SampleCount};
use qarith_core::{BatchOptions, MeasureOptions, MethodChoice};
use qarith_datagen::WorkloadScale;
use qarith_serve::{QueryService, ServeConfig};
use qarith_types::{NumNullId, Value, WriteBatch};

const EPOCHS: u64 = 10;
const READERS: usize = 4;
const SQL: &str = "SELECT O.id FROM Orders O WHERE O.q >= 51 LIMIT 25";

fn test_service() -> QueryService {
    let db = qarith_datagen::sales::sales_database(&WorkloadScale::Tiny.params(), 2020);
    let options = MeasureOptions {
        method: MethodChoice::Afpras,
        afpras: AfprasOptions {
            epsilon: 0.25,
            samples: SampleCount::Paper,
            seed: 77,
            ..AfprasOptions::default()
        },
        batch: BatchOptions { threads: 1, dedup: true },
        ..MeasureOptions::default()
    };
    QueryService::new(db, ServeConfig { options, ..ServeConfig::default() })
}

/// The writer's i-th batch: one fresh Orders tuple whose `q` is a
/// fresh marked null (ids far above anything the generator minted), so
/// every batch both changes the digest and adds an uncertain candidate
/// for the readers' template.
fn write_batch(i: u64) -> WriteBatch {
    let mut batch = WriteBatch::new();
    batch.insert(
        "Orders",
        vec![
            Value::int((1 << 20) + i as i64),
            Value::int(i as i64),
            Value::NumNull(NumNullId((1 << 20) + i as u32)),
            Value::num(1),
        ],
    );
    batch
}

#[test]
fn readers_only_ever_observe_published_epochs() {
    let service = Arc::new(test_service());
    let epoch0 = service.snapshot().expect("initial snapshot");
    let done = AtomicBool::new(false);

    let (published, observed) = std::thread::scope(|scope| {
        let writer = scope.spawn({
            let service = service.clone();
            let done = &done;
            move || {
                let mut outcomes = Vec::new();
                for i in 0..EPOCHS {
                    outcomes.push(service.apply(&write_batch(i)).expect("committed batch"));
                    // Give readers a window to actually pin this epoch
                    // before the next one supersedes it.
                    std::thread::sleep(Duration::from_millis(15));
                }
                done.store(true, Ordering::Release);
                outcomes
            }
        });

        let readers: Vec<_> = (0..READERS)
            .map(|reader| {
                let service = service.clone();
                let done = &done;
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    let mut last_epoch = 0u64;
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        let response = service.query(SQL).expect("read under write load");
                        assert!(
                            response.epoch >= last_epoch,
                            "reader {reader}: epoch went backwards \
                             ({last_epoch} then {})",
                            response.epoch
                        );
                        last_epoch = response.epoch;
                        seen.push((response.epoch, response.db_digest));
                        if finished {
                            // This request started after the writer's
                            // final publish: post-drain convergence.
                            assert_eq!(
                                response.epoch, EPOCHS,
                                "reader {reader}: a post-drain request must see the final epoch"
                            );
                            return seen;
                        }
                    }
                })
            })
            .collect();

        let published = writer.join().expect("writer");
        let observed: Vec<_> =
            readers.into_iter().flat_map(|r| r.join().expect("reader")).collect();
        (published, observed)
    });

    // Every batch applied (fresh tuples, never no-ops) and published a
    // consecutive epoch.
    let mut digest_of: HashMap<u64, u64> = HashMap::from([(0, epoch0.digest)]);
    for (i, outcome) in published.iter().enumerate() {
        assert_eq!(outcome.epoch, i as u64 + 1, "epochs are consecutive");
        assert_eq!((outcome.applied, outcome.noops), (1, 0));
        digest_of.insert(outcome.epoch, outcome.db_digest);
    }

    // The core invariant: every observed (epoch, digest) pair is a
    // published one — never a torn in-between state.
    assert!(!observed.is_empty());
    for (epoch, digest) in &observed {
        let want = digest_of
            .get(epoch)
            .unwrap_or_else(|| panic!("observed epoch {epoch} was never published"));
        assert_eq!(
            digest, want,
            "epoch {epoch}: response digest must match the published snapshot"
        );
    }

    let stats = service.stats();
    assert_eq!(stats.epoch, EPOCHS);
    assert_eq!(stats.writes, EPOCHS);
    assert_eq!(stats.write_ops, EPOCHS);
}
