//! # qarith-serve — concurrent query serving over the certainty engine
//!
//! The paper's practical claim (Theorem 8.1 and the §9 experiments) is
//! that certainty measures ν for FO(+,·,<) queries are computable at
//! *interactive* speed. Interactive systems are not one-shot batch
//! jobs: they are long-lived processes serving many concurrent clients
//! whose traffic repeats a small population of query templates — the
//! certain/possible-answer APIs of Console–Libkin–Peterfreund
//! (*Querying Incomplete Numerical Data*) and the multiplexed
//! counting-style workloads of Arenas–Barceló–Monet (*Counting
//! Problems over Incomplete Databases*) both have this shape. This
//! crate is that serving layer, on top of `qarith-core`'s batch engine
//! (below `qarith-bench`, which load-tests it; above `qarith-sql` and
//! `qarith-engine`, which it drives):
//!
//! * [`QueryService`] ([`service`]) — a thread-safe, long-lived handle
//!   owning one loaded database and one [`CertaintyEngine`]; clients
//!   submit SQL text from any number of threads.
//! * **Prepared plans** — parse → lower → ground → canonicalize/dedup
//!   → rewrite runs **once per query template**, keyed by the
//!   normalized SQL fingerprint of [`qarith_sql::fingerprint`]; repeat
//!   traffic (however it spells whitespace, keyword case, aliases, or
//!   literals) skips the whole front half and goes straight to
//!   per-group ν lookup via [`CertaintyEngine::execute_plan`].
//! * **A bounded, sharded ν-cache** ([`shard`]) — N independently
//!   locked shards with per-shard LRU eviction under a configurable
//!   memory budget, replacing the unbounded single-lock
//!   [`NuCache`](qarith_core::NuCache) on the serving path (the
//!   single-shot routes keep `NuCache`, bit-pinned). Eviction can only
//!   cost recomputation, never change a certainty — see [`shard`].
//! * **Admission control** ([`admission`]) — a max-in-flight gate, so
//!   overload degrades to queueing instead of collapse.
//! * **A live write path** ([`epoch`]) — `INSERT`/`DELETE`/`UPDATE`
//!   batches ([`qarith_types::WriteBatch`]) applied through an
//!   epoch-versioned snapshot store: writers build epoch N+1 aside
//!   while readers keep epoch N, a committed batch invalidates only
//!   the ν-cache keys and plans whose grounding touched the changed
//!   relations, and every response names the epoch digest its answers
//!   are pinned to.
//!
//! Every layer exports counters through the workspace's `as_pairs`
//! convention; `serve_bench` (crate `qarith-bench`) serializes them
//! next to p50/p95/p99 latency percentiles into the schema-v2
//! `BENCH_*.json` artifact that CI gates.
//!
//! ```
//! use qarith_serve::{QueryService, ServeConfig};
//! use qarith_types::{Column, Database, NumNullId, Relation, RelationSchema, Value};
//!
//! // A one-relation database with a single uncertain pair.
//! let mut db = Database::new();
//! let schema = RelationSchema::new(
//!     "R",
//!     vec![Column::base("id"), Column::num("x"), Column::num("y")],
//! ).unwrap();
//! let mut r = Relation::empty(schema);
//! r.insert_values(vec![
//!     Value::int(1),
//!     Value::NumNull(NumNullId(0)),
//!     Value::NumNull(NumNullId(1)),
//! ]).unwrap();
//! db.add_relation(r).unwrap();
//!
//! let service = QueryService::new(db, ServeConfig::default());
//! let first = service.query("SELECT R.id FROM R WHERE R.x > R.y").unwrap();
//! assert_eq!(first.answers[0].certainty.value, 0.5);
//! // Same template, different spelling: served from the prepared plan.
//! let again = service.query("select  r2.id  from R r2 where r2.x > r2.y").unwrap();
//! assert!(again.plan_cached);
//! assert_eq!(again.answers[0].certainty.value, 0.5);
//! ```
//!
//! [`CertaintyEngine`]: qarith_core::CertaintyEngine
//! [`CertaintyEngine::execute_plan`]: qarith_core::CertaintyEngine::execute_plan

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod epoch;
mod error;
pub mod service;
pub mod shard;

pub use admission::{AdmissionGate, AdmissionPermit, AdmissionStats};
pub use epoch::{database_digest, Snapshot, WriteOutcome};
pub use error::ServeError;
pub use service::{QueryResponse, QueryService, ServeConfig, ServiceStats};
pub use shard::{ShardedCacheConfig, ShardedCacheStats, ShardedNuCache};
