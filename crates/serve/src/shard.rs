//! The bounded, sharded ν-cache of the serving path.
//!
//! The single-shot pipelines memoize ν in `qarith-core`'s [`NuCache`]:
//! one mutex, unbounded growth. Both choices are wrong for a long-lived
//! service — every concurrent client serializes on the lock, and
//! sustained traffic over an evolving template population grows the
//! table without limit. [`ShardedNuCache`] replaces it on the serving
//! route:
//!
//! * **Sharding** — entries are distributed over N independently locked
//!   shards by a hash of the group key, so concurrent lookups of
//!   different formulas contend only `1/N` of the time. The shard
//!   choice affects *placement only*: which shard holds a key can never
//!   influence the value returned for it.
//! * **Bounded memory** — each shard enforces `budget_bytes / shards`
//!   with least-recently-used eviction (every hit refreshes recency).
//!   The resident size is accounted per entry as key bytes + estimate
//!   size + a fixed bookkeeping overhead.
//! * **Observability** — hit/miss/entry/eviction/byte counters exported
//!   through the workspace's `as_pairs` convention
//!   ([`ShardedCacheStats::as_pairs`]), like every other stats block in
//!   `BENCH_*.json`.
//! * **Delta-aware invalidation** — a relation → group-key index
//!   ([`ShardedNuCache::register`]), fed by the service at plan-build
//!   time, lets a committed write drop exactly the keys whose
//!   grounding consulted a touched relation
//!   ([`ShardedNuCache::invalidate_relations`]) instead of nuking the
//!   cache. Like eviction, this is *hygiene, not correctness*: keys
//!   are content-addressed canonical formulas, so an entry a write
//!   logically supersedes is simply never looked up again by the new
//!   grounding — invalidation reclaims its memory and keeps the
//!   counters honest. Over-registration (a key filed under a relation
//!   whose change doesn't affect it) is therefore sound too: it can
//!   only cost recomputation.
//!
//! **Why eviction cannot change answers.** Every estimate is a
//! deterministic function of its `(group key, options fingerprint)` —
//! that is the contract of [`CertaintyCache`] and the reason ν is
//! cacheable at all. Evicting an entry therefore only moves the next
//! request for it from the lookup path to the recompute path, which
//! produces the *bit-identical* value the cache would have returned.
//! Eviction changes cost, never certainties; the serving tests lock
//! this in by forcing a tiny budget and comparing bits.
//!
//! [`NuCache`]: qarith_core::NuCache

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use qarith_core::{CertaintyCache, CertaintyEstimate};

/// Fixed per-entry bookkeeping charge (map nodes, the recency index,
/// and the `Arc<str>` header) on top of key and estimate bytes. The
/// point of the budget is a reliable *order of magnitude*, not
/// allocator-exact accounting.
const ENTRY_OVERHEAD_BYTES: usize = 96;

/// Configuration of a [`ShardedNuCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardedCacheConfig {
    /// Number of independently locked shards. Rounded up to at least 1.
    pub shards: usize,
    /// Total memory budget across all shards, in (accounted) bytes.
    /// Each shard enforces `budget_bytes / shards`.
    pub budget_bytes: usize,
}

impl Default for ShardedCacheConfig {
    /// 16 shards, 64 MiB — roomy for the workload suite at every scale
    /// while still bounding a service that runs for weeks.
    fn default() -> Self {
        ShardedCacheConfig { shards: 16, budget_bytes: 64 << 20 }
    }
}

/// Aggregate counters of a [`ShardedNuCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardedCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Entries evicted under the memory budget since creation.
    pub evictions: u64,
    /// Accounted bytes currently resident.
    pub resident_bytes: u64,
    /// Number of shards (constant; exported so one stats block is
    /// self-describing).
    pub shards: u64,
    /// Distinct group keys dropped by delta-aware invalidation since
    /// creation (only keys that actually held entries count — draining
    /// an already-evicted key is not an invalidation).
    pub invalidations: u64,
    /// Entries dropped by invalidation (≥ `invalidations`: one key may
    /// hold several fingerprints).
    pub invalidated_entries: u64,
}

impl ShardedCacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counters as stable `(name, value)` pairs, in declaration
    /// order — the machine-readable export `serve_bench` serializes
    /// into `BENCH_*.json`. Names are part of the JSON schema: renaming
    /// one is a baseline-breaking change.
    pub fn as_pairs(&self) -> [(&'static str, u64); 8] {
        [
            ("hits", self.hits),
            ("misses", self.misses),
            ("entries", self.entries),
            ("evictions", self.evictions),
            ("resident_bytes", self.resident_bytes),
            ("shards", self.shards),
            ("invalidations", self.invalidations),
            ("invalidated_entries", self.invalidated_entries),
        ]
    }
}

/// One stored estimate.
struct Entry {
    estimate: CertaintyEstimate,
    /// Position in the shard's recency index.
    tick: u64,
    /// Accounted size (subtracted back on eviction).
    bytes: usize,
}

/// One shard: a two-level map (group key → fingerprint → entry, so
/// lookups probe with `&str` and never allocate) plus a recency index.
/// The key `Arc<str>` is shared between map and index, so a recency
/// touch moves 16 bytes, not the (large) key string.
#[derive(Default)]
struct ShardInner {
    map: HashMap<Arc<str>, HashMap<u64, Entry>>,
    /// tick → (group key, fingerprint); the smallest tick is the least
    /// recently used entry. Ticks are unique within a shard.
    recency: BTreeMap<u64, (Arc<str>, u64)>,
    next_tick: u64,
    resident_bytes: usize,
    evictions: u64,
}

impl ShardInner {
    fn touch(&mut self, key: &Arc<str>, fingerprint: u64) {
        let tick = self.next_tick;
        self.next_tick += 1;
        let entry = self.map.get_mut(key).and_then(|by_fp| by_fp.get_mut(&fingerprint));
        // Callers pass a key they just found under this same lock, so
        // the entry is present; tolerating absence anyway (a skipped
        // recency refresh) keeps the request path panic-free.
        let Some(entry) = entry else { return };
        let old = std::mem::replace(&mut entry.tick, tick);
        self.recency.remove(&old);
        self.recency.insert(tick, (key.clone(), fingerprint));
    }

    /// Drops every fingerprint stored under `key`, returning how many
    /// entries that was (0 when the key is absent — evicted, or never
    /// resident in this shard).
    fn remove_key(&mut self, key: &str) -> usize {
        let Some(by_fp) = self.map.remove(key) else { return 0 };
        let mut removed = 0;
        for entry in by_fp.values() {
            self.recency.remove(&entry.tick);
            self.resident_bytes -= entry.bytes;
            removed += 1;
        }
        removed
    }

    fn evict_to(&mut self, budget: usize) {
        while self.resident_bytes > budget {
            let Some((_, (key, fingerprint))) = self.recency.pop_first() else { break };
            let Some(by_fp) = self.map.get_mut(&key) else { continue };
            if let Some(entry) = by_fp.remove(&fingerprint) {
                self.resident_bytes -= entry.bytes;
                self.evictions += 1;
            }
            if by_fp.is_empty() {
                self.map.remove(&key);
            }
        }
    }
}

/// A bounded, sharded, LRU-evicting implementation of
/// [`CertaintyCache`] for the serving path. See the module docs for
/// the policy and its soundness argument.
#[derive(Debug)]
pub struct ShardedNuCache {
    shards: Vec<Mutex<ShardInner>>,
    per_shard_budget: usize,
    config: ShardedCacheConfig,
    hits: AtomicU64,
    misses: AtomicU64,
    /// The delta index: relation name → group keys whose grounding
    /// consulted it (`NuCacheDeltaIndex` in the declared lock
    /// hierarchy — above the shard locks, so invalidation may walk
    /// from the index into the shards). Keys are `Arc<str>` shared
    /// across relations. The index is registration-only between
    /// writes; [`ShardedNuCache::invalidate_relations`] drains the
    /// touched relations' sets, and plan rebuilds re-register, so
    /// under write traffic the index tracks the live template
    /// population rather than growing without bound.
    delta: Mutex<HashMap<String, HashSet<Arc<str>>>>,
    invalidations: AtomicU64,
    invalidated_entries: AtomicU64,
}

// ShardInner has no Debug (Arc<str> maps are noise); summarize instead.
impl std::fmt::Debug for ShardInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardInner")
            .field("entries", &self.recency.len())
            .field("resident_bytes", &self.resident_bytes)
            .field("evictions", &self.evictions)
            .finish()
    }
}

impl ShardedNuCache {
    /// An empty cache under the given configuration.
    pub fn new(config: ShardedCacheConfig) -> ShardedNuCache {
        let shards = config.shards.max(1);
        ShardedNuCache {
            shards: (0..shards).map(|_| Mutex::new(ShardInner::default())).collect(),
            per_shard_budget: config.budget_bytes / shards,
            config,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            delta: Mutex::new(HashMap::new()),
            invalidations: AtomicU64::new(0),
            invalidated_entries: AtomicU64::new(0),
        }
    }

    /// Files `group_keys` under each of `relations` in the delta
    /// index. The service calls this at plan-build time, when both the
    /// plan's relation footprint and its group keys are in hand.
    /// Over-registration is sound (see the module docs); a poisoned
    /// index degrades to whole-relation over-invalidation never
    /// happening, which is also sound — stale entries are unreachable
    /// by construction.
    pub fn register<'k>(&self, relations: &[String], group_keys: impl Iterator<Item = &'k str>) {
        if relations.is_empty() {
            return;
        }
        let keys: Vec<Arc<str>> = group_keys.map(Arc::from).collect();
        if keys.is_empty() {
            return;
        }
        let Ok(mut delta) = self.delta.lock() else { return };
        for relation in relations {
            let set = delta.entry(relation.clone()).or_default();
            for key in &keys {
                set.insert(key.clone());
            }
        }
    }

    /// Drops every entry whose group key is registered under any of
    /// `touched`, returning `(distinct keys dropped, entries
    /// dropped)`. The drained keys leave the index; survivors (keys
    /// registered only under untouched relations) keep their entries
    /// *and* their index membership — the invalidation-selectivity
    /// test counts them.
    pub fn invalidate_relations(&self, touched: &[String]) -> (u64, u64) {
        if touched.is_empty() {
            return (0, 0);
        }
        // Collect under the index lock, mutate shards after it is
        // released (the hierarchy permits holding it, but the drain
        // doesn't need to).
        let keys: BTreeSet<Arc<str>> = {
            let Ok(mut delta) = self.delta.lock() else { return (0, 0) };
            touched.iter().filter_map(|rel| delta.remove(rel)).flatten().collect()
        };
        let mut dropped_keys = 0u64;
        let mut dropped_entries = 0u64;
        for key in keys {
            let Ok(mut inner) = self.shard_of(&key).lock() else { continue };
            let removed = inner.remove_key(&key);
            drop(inner);
            if removed > 0 {
                dropped_keys += 1;
                dropped_entries += removed as u64;
            }
        }
        self.invalidations.fetch_add(dropped_keys, Ordering::Relaxed);
        self.invalidated_entries.fetch_add(dropped_entries, Ordering::Relaxed);
        (dropped_keys, dropped_entries)
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> ShardedCacheConfig {
        self.config
    }

    /// FNV-1a shard placement. Stability across processes is not
    /// required (placement is invisible in results), but a fixed
    /// function keeps eviction traces reproducible for a fixed request
    /// order, which the serving tests rely on.
    fn shard_of(&self, group_key: &str) -> &Mutex<ShardInner> {
        let h = qarith_numeric::Fnv1a64::digest(group_key.as_bytes());
        // analyze: allow(panic-index, reason = "h % len < len by construction, and len >= 1 is forced in new()")
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Current aggregate counters.
    pub fn stats(&self) -> ShardedCacheStats {
        let mut stats = ShardedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            shards: self.shards.len() as u64,
            invalidations: self.invalidations.load(Ordering::Relaxed),
            invalidated_entries: self.invalidated_entries.load(Ordering::Relaxed),
            ..ShardedCacheStats::default()
        };
        for shard in &self.shards {
            // A poisoned shard is skipped: its entries are unreachable
            // (lookups treat it as a permanent miss), so not counting
            // them matches what requests observe.
            let Ok(inner) = shard.lock() else { continue };
            stats.entries += inner.recency.len() as u64;
            stats.resident_bytes += inner.resident_bytes as u64;
            stats.evictions += inner.evictions;
        }
        stats
    }

    /// Drops all entries and counters (the budget stays).
    pub fn clear(&self) {
        for shard in &self.shards {
            // Resetting a poisoned shard would be sound (the fresh
            // value is trivially consistent), but `lock()` has already
            // classified it; leave it to the permanent-miss policy.
            if let Ok(mut inner) = shard.lock() {
                *inner = ShardInner::default();
            }
        }
        if let Ok(mut delta) = self.delta.lock() {
            delta.clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
        self.invalidated_entries.store(0, Ordering::Relaxed);
    }

    fn entry_bytes(key: &str) -> usize {
        key.len() + std::mem::size_of::<CertaintyEstimate>() + ENTRY_OVERHEAD_BYTES
    }
}

impl CertaintyCache for ShardedNuCache {
    fn get(&self, group_key: &str, fingerprint: u64) -> Option<CertaintyEstimate> {
        // Poison policy: a poisoned shard degrades to a permanent miss.
        // This is sound for the same reason eviction is — every entry
        // is a deterministic function of its key, so losing access to a
        // shard costs recomputation, never correctness. Requests keep
        // flowing at 15/16ths capacity instead of failing.
        let Ok(mut inner) = self.shard_of(group_key).lock() else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let found = inner.map.get_key_value(group_key).and_then(|(key, by_fp)| {
            by_fp.get(&fingerprint).map(|e| (key.clone(), e.estimate.clone()))
        });
        match found {
            Some((key, mut estimate)) => {
                inner.touch(&key, fingerprint);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                estimate.cached = true;
                Some(estimate)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, group_key: String, fingerprint: u64, estimate: CertaintyEstimate) {
        let bytes = ShardedNuCache::entry_bytes(&group_key);
        // Poisoned shard: drop the insert (see `get` — the shard is a
        // permanent miss, so storing into it would never be observed).
        let Ok(mut inner) = self.shard_of(&group_key).lock() else { return };
        let key: Arc<str> = match inner.map.get_key_value(group_key.as_str()) {
            Some((key, _)) => key.clone(),
            None => Arc::from(group_key.into_boxed_str()),
        };
        let tick = inner.next_tick;
        inner.next_tick += 1;
        let replaced = inner
            .map
            .entry(key.clone())
            .or_default()
            .insert(fingerprint, Entry { estimate, tick, bytes });
        if let Some(old) = replaced {
            // Replacement: racing writers hold bit-identical values, so
            // only the recency/accounting bookkeeping changes.
            inner.resident_bytes -= old.bytes;
            inner.recency.remove(&old.tick);
        }
        inner.resident_bytes += bytes;
        inner.recency.insert(tick, (key, fingerprint));
        inner.evict_to(self.per_shard_budget);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_numeric::Rational;

    fn est(v: i128, d: i128) -> CertaintyEstimate {
        CertaintyEstimate::exact_rational(Rational::new(v, d), 1)
    }

    fn key(i: usize) -> String {
        format!("a:group-key-{i:04}")
    }

    #[test]
    fn get_insert_roundtrip_marks_cached() {
        let cache = ShardedNuCache::new(ShardedCacheConfig::default());
        assert!(cache.get("k", 7).is_none());
        cache.insert("k".into(), 7, est(1, 2));
        let got = cache.get("k", 7).expect("present");
        assert_eq!(got.exact, Some(Rational::new(1, 2)));
        assert!(got.cached);
        assert!(cache.get("k", 8).is_none(), "fingerprint is part of the key");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn budget_is_respected_and_eviction_is_lru() {
        // Room for ~4 entries per shard in a single shard.
        let per_entry = ShardedNuCache::entry_bytes(&key(0));
        let config = ShardedCacheConfig { shards: 1, budget_bytes: 4 * per_entry };
        let cache = ShardedNuCache::new(config);
        for i in 0..4 {
            cache.insert(key(i), 0, est(1, i as i128 + 1));
        }
        assert_eq!(cache.stats().evictions, 0);
        // Touch key 0 so key 1 becomes the LRU victim.
        assert!(cache.get(&key(0), 0).is_some());
        cache.insert(key(4), 0, est(1, 5));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.resident_bytes <= config.budget_bytes as u64);
        assert!(cache.get(&key(1), 0).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(0), 0).is_some(), "recently used entry survives");
        assert!(cache.get(&key(4), 0).is_some(), "new entry resident");
    }

    #[test]
    fn eviction_only_costs_recomputation() {
        // A degenerate budget evicts constantly; values must still be
        // exactly what was inserted whenever they are present.
        let config = ShardedCacheConfig {
            shards: 2,
            budget_bytes: 3 * ShardedNuCache::entry_bytes(&key(0)),
        };
        let cache = ShardedNuCache::new(config);
        for round in 0..3 {
            for i in 0..16 {
                cache.insert(key(i), 9, est(1, i as i128 + 1));
                let got = cache.get(&key(i), 9).expect("just inserted (fits one entry)");
                assert_eq!(got.exact, Some(Rational::new(1, i as i128 + 1)), "round {round}");
            }
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "tiny budget must evict");
        assert!(stats.resident_bytes <= config.budget_bytes as u64);
    }

    #[test]
    fn replacement_does_not_leak_accounting() {
        let cache = ShardedNuCache::new(ShardedCacheConfig { shards: 1, budget_bytes: 1 << 20 });
        for _ in 0..100 {
            cache.insert("same".into(), 1, est(1, 3));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.resident_bytes, ShardedNuCache::entry_bytes("same") as u64);
    }

    #[test]
    fn shared_across_threads() {
        let cache = ShardedNuCache::new(ShardedCacheConfig::default());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..50 {
                        cache.insert(format!("t{t}-{i}"), 0, est(1, 4));
                        assert!(cache.get(&format!("t{t}-{i}"), 0).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.stats().entries, 200);
    }

    #[test]
    fn invalidation_is_selective_and_survivors_hit() {
        let cache = ShardedNuCache::new(ShardedCacheConfig::default());
        for i in 0..4 {
            cache.insert(key(i), 1, est(1, i as i128 + 1));
        }
        cache.register(&["Orders".to_string()], [key(0), key(1)].iter().map(String::as_str));
        cache.register(&["Market".to_string()], [key(1), key(2)].iter().map(String::as_str));
        // key(3) is unregistered: writes can never touch it.

        let (keys, entries) = cache.invalidate_relations(&["Orders".to_string()]);
        assert_eq!((keys, entries), (2, 2), "both Orders keys drop, nothing else");
        assert!(cache.get(&key(0), 1).is_none());
        assert!(cache.get(&key(1), 1).is_none(), "shared key drops with either relation");
        assert!(cache.get(&key(2), 1).is_some(), "Market-only key survives");
        assert!(cache.get(&key(3), 1).is_some(), "unregistered key survives");
        let stats = cache.stats();
        assert_eq!((stats.invalidations, stats.invalidated_entries), (2, 2));
        assert_eq!(stats.entries, 2);

        // Draining Market again only drops what is still resident:
        // key(1) is gone, so only key(2) counts.
        let (keys, entries) = cache.invalidate_relations(&["Market".to_string()]);
        assert_eq!((keys, entries), (1, 1));
        assert!(cache.get(&key(2), 1).is_none());
        assert!(cache.get(&key(3), 1).is_some());
    }

    #[test]
    fn invalidating_unregistered_relations_is_a_noop() {
        let cache = ShardedNuCache::new(ShardedCacheConfig::default());
        cache.insert(key(0), 1, est(1, 2));
        assert_eq!(cache.invalidate_relations(&["Nothing".to_string()]), (0, 0));
        assert_eq!(cache.invalidate_relations(&[]), (0, 0));
        assert!(cache.get(&key(0), 1).is_some());
    }
}
