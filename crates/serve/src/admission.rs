//! Admission control: a counting gate on in-flight queries.
//!
//! A certainty query is CPU-bound (Monte-Carlo directions, exact
//! geometry); admitting every arriving request under overload just
//! multiplies context switches and working sets until everything is
//! slow at once. The gate caps concurrent execution at a configured
//! width — requests beyond it *queue* (block on a condvar) instead of
//! executing, so overload degrades into longer waits with throughput
//! intact, rather than collapsing. Nothing is shed: every admitted
//! request eventually runs, in condvar wake order (approximately FIFO;
//! the OS decides ties).
//!
//! The wait is part of the request's latency — `serve_bench`'s
//! percentiles measure it, which is exactly the point: queueing under
//! overload must be *visible* in p95/p99, not hidden.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

/// Counters of an [`AdmissionGate`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted (each exactly once).
    pub admitted: u64,
    /// Requests that found the gate full and had to queue.
    pub queued: u64,
    /// Permits held right now (gauge, ≤ `max_in_flight`). The wire
    /// layer's lifecycle tests watch this: a connection blocked writing
    /// a response must show `in_flight` back at 0, because permits are
    /// scoped to query execution, never to response delivery.
    pub in_flight: u64,
    /// The configured concurrency cap.
    pub max_in_flight: u64,
}

impl AdmissionStats {
    /// The counters as stable `(name, value)` pairs, in declaration
    /// order — the machine-readable export `serve_bench` serializes
    /// into `BENCH_*.json`. Names are part of the JSON schema: renaming
    /// one is a baseline-breaking change.
    pub fn as_pairs(&self) -> [(&'static str, u64); 4] {
        [
            ("admitted", self.admitted),
            ("queued", self.queued),
            ("in_flight", self.in_flight),
            ("max_in_flight", self.max_in_flight),
        ]
    }
}

/// A counting semaphore with queue accounting. `std::sync` only (no
/// external semaphore dependency): a mutex-guarded counter plus a
/// condvar.
#[derive(Debug)]
pub struct AdmissionGate {
    max_in_flight: usize,
    in_flight: Mutex<usize>,
    released: Condvar,
    admitted: AtomicU64,
    queued: AtomicU64,
}

impl AdmissionGate {
    /// A gate admitting at most `max_in_flight` concurrent holders
    /// (rounded up to 1: a gate that admits nobody deadlocks by
    /// construction).
    pub fn new(max_in_flight: usize) -> AdmissionGate {
        AdmissionGate {
            max_in_flight: max_in_flight.max(1),
            in_flight: Mutex::new(0),
            released: Condvar::new(),
            admitted: AtomicU64::new(0),
            queued: AtomicU64::new(0),
        }
    }

    /// Blocks until a slot is free, then occupies it. The returned
    /// permit releases the slot on drop (also on panic — the gate never
    /// leaks capacity).
    ///
    /// **Poison policy.** The guarded state is a bare counter updated
    /// with panic-free arithmetic, so a poisoned mutex (some unrelated
    /// code panicked mid-critical-section) cannot leave it torn; the
    /// gate recovers the guard with [`PoisonError::into_inner`] and
    /// keeps admitting. Propagating instead would deadlock the service:
    /// a permit's `Drop` must decrement the counter even during an
    /// unwind, or the slot leaks and the gate shrinks forever.
    pub fn acquire(&self) -> AdmissionPermit<'_> {
        let mut in_flight = self.in_flight.lock().unwrap_or_else(PoisonError::into_inner);
        if *in_flight >= self.max_in_flight {
            self.queued.fetch_add(1, Ordering::Relaxed);
            while *in_flight >= self.max_in_flight {
                in_flight = self.released.wait(in_flight).unwrap_or_else(PoisonError::into_inner);
            }
        }
        *in_flight += 1;
        self.admitted.fetch_add(1, Ordering::Relaxed);
        AdmissionPermit { gate: self }
    }

    /// Current counters. Reads the guarded slot count (recovering from
    /// poison like `acquire` — the counter itself is never torn), so
    /// the `in_flight` gauge is exact at the instant of the read.
    pub fn stats(&self) -> AdmissionStats {
        let in_flight = *self.in_flight.lock().unwrap_or_else(PoisonError::into_inner) as u64;
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            in_flight,
            max_in_flight: self.max_in_flight as u64,
        }
    }
}

/// An occupied admission slot; dropping it wakes one queued waiter.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        // Recover from poison (see `acquire`): this decrement must run
        // even while unwinding from a request panic, or the slot leaks.
        let mut in_flight = self.gate.in_flight.lock().unwrap_or_else(PoisonError::into_inner);
        *in_flight -= 1;
        drop(in_flight);
        self.gate.released.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn caps_concurrency_and_counts_queueing() {
        let gate = AdmissionGate::new(2);
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let (gate, running, peak) = (&gate, &running, &peak);
                scope.spawn(move || {
                    let _permit = gate.acquire();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    running.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "gate admitted more than its cap");
        let stats = gate.stats();
        assert_eq!(stats.admitted, 8, "nothing is shed");
        assert!(stats.queued > 0, "8 arrivals through a 2-wide gate must queue");
        assert_eq!(stats.in_flight, 0, "all permits returned");
        assert_eq!(stats.max_in_flight, 2);
    }

    #[test]
    fn zero_width_gate_still_admits_one() {
        let gate = AdmissionGate::new(0);
        let _permit = gate.acquire();
        assert_eq!(gate.stats().max_in_flight, 1);
    }

    #[test]
    fn permit_released_on_panic() {
        let gate = AdmissionGate::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _permit = gate.acquire();
            panic!("request died");
        }));
        assert!(result.is_err());
        assert_eq!(gate.stats().in_flight, 0, "unwound permit released its slot");
        // The slot must be free again.
        let _permit = gate.acquire();
        assert_eq!(gate.stats().admitted, 2);
        assert_eq!(gate.stats().in_flight, 1);
    }
}
