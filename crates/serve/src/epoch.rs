//! Epoch-versioned snapshots of a live database.
//!
//! The serving stack's bit-pinning contract says every answer is a
//! deterministic function of (database contents, options fingerprint).
//! A *mutable* database keeps that contract by versioning it: each
//! committed [`WriteBatch`](qarith_types::WriteBatch) publishes a fresh
//! immutable [`Snapshot`] — epoch number, `Arc<Database>`, and a
//! content digest — and readers pin whichever snapshot was current when
//! their request started. Writers build epoch N+1 off to the side and
//! swap one pointer; no reader ever observes a torn database, and
//! bit-pinning holds *per epoch* (the digest names which contents an
//! answer was computed against).
//!
//! Per-relation version counters ride along so the plan cache can stay
//! selective too: a prepared plan embeds candidates grounded against
//! specific relations, so it remains valid exactly while those
//! relations' versions are unchanged (see `service`).

use std::collections::HashMap;
use std::sync::Arc;

use qarith_types::Database;

/// One published epoch: an immutable database plus its identity.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Monotone epoch number (0 is the load-time database).
    pub epoch: u64,
    /// The database as of this epoch. Shared, never mutated: the next
    /// epoch clones and replaces it.
    pub db: Arc<Database>,
    /// Content digest of `db` ([`database_digest`]) — the bit-pinning
    /// identity carried on replies and checked by the torture tests.
    pub digest: u64,
    /// Per-relation version counters, bumped when a batch touches the
    /// relation. Plan validity is keyed on these, not on the epoch:
    /// a write to `Orders` must not evict plans that only read
    /// `Market`.
    versions: HashMap<String, u64>,
}

impl Snapshot {
    /// Epoch 0 over a freshly loaded database (every relation at
    /// version 0).
    pub fn initial(db: Database) -> Snapshot {
        let versions = db.relations().iter().map(|r| (r.schema().name().to_string(), 0)).collect();
        let digest = database_digest(&db);
        Snapshot { epoch: 0, db: Arc::new(db), digest, versions }
    }

    /// The successor snapshot: `db` is the already-mutated database,
    /// `touched` the relations the batch changed (their versions bump
    /// by one; untouched relations keep theirs).
    pub fn next(&self, db: Database, touched: &[String]) -> Snapshot {
        let mut versions = self.versions.clone();
        for name in touched {
            *versions.entry(name.clone()).or_insert(0) += 1;
        }
        let digest = database_digest(&db);
        Snapshot { epoch: self.epoch + 1, db: Arc::new(db), digest, versions }
    }

    /// The relation's current version (0 for names the database does
    /// not declare — such a plan dependency can never be satisfied or
    /// invalidated, and lowering would have rejected the query anyway).
    pub fn version_of(&self, relation: &str) -> u64 {
        self.versions.get(relation).copied().unwrap_or(0)
    }
}

/// What one committed [`WriteBatch`](qarith_types::WriteBatch) did —
/// the new epoch's identity plus invalidation accounting, surfaced on
/// the wire as the `qarith-write/1` ack frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteOutcome {
    /// The epoch the batch published.
    pub epoch: u64,
    /// Content digest of the published database.
    pub db_digest: u64,
    /// Ops that changed the database.
    pub applied: u64,
    /// Well-typed no-op ops (duplicate insert, absent delete/update).
    pub noops: u64,
    /// Distinct ν-cache group keys invalidated by this batch.
    pub invalidated_keys: u64,
    /// ν-cache entries dropped (≥ keys: one key may hold several
    /// fingerprints).
    pub invalidated_entries: u64,
    /// Cached plans dropped because they depended on a touched
    /// relation.
    pub plans_invalidated: u64,
}

/// A stable 64-bit digest of a database's full contents (relation
/// names, schemas, and every tuple in insertion order), via FNV-1a over
/// the display forms. Bit-for-bit the same function as
/// `qarith_datagen::database_digest` — re-implemented here so the
/// serving layer does not depend on the data generator; a cross-crate
/// test pins the two together.
pub fn database_digest(db: &Database) -> u64 {
    let mut h = qarith_numeric::Fnv1a64::new();
    for rel in db.relations() {
        h.update(rel.schema().name().as_bytes());
        h.update(b"|");
        for col in rel.schema().columns() {
            h.update(format!("{}:{:?};", col.name(), col.sort()).as_bytes());
        }
        for t in rel.tuples() {
            h.update(format!("{t}\n").as_bytes());
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_types::{Column, Relation, RelationSchema, Value, WriteBatch};

    fn db() -> Database {
        let mut db = Database::new();
        let schema = RelationSchema::new("R", vec![Column::base("a"), Column::num("x")]).unwrap();
        let mut r = Relation::empty(schema);
        r.insert_values(vec![Value::int(1), Value::num(10)]).unwrap();
        db.add_relation(r).unwrap();
        let s = RelationSchema::new("S", vec![Column::base("b")]).unwrap();
        db.add_relation(Relation::empty(s)).unwrap();
        db
    }

    #[test]
    fn initial_snapshot_pins_contents() {
        let snap = Snapshot::initial(db());
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.digest, database_digest(&snap.db));
        assert_eq!(snap.version_of("R"), 0);
        assert_eq!(snap.version_of("S"), 0);
    }

    #[test]
    fn next_bumps_only_touched_versions() {
        let snap = Snapshot::initial(db());
        let mut mutated = (*snap.db).clone();
        let mut batch = WriteBatch::new();
        batch.insert("R", vec![Value::int(2), Value::num(20)]);
        mutated.apply_batch(&batch).unwrap();
        let next = snap.next(mutated, &["R".to_string()]);
        assert_eq!(next.epoch, 1);
        assert_ne!(next.digest, snap.digest, "contents changed, digest must move");
        assert_eq!(next.version_of("R"), 1);
        assert_eq!(next.version_of("S"), 0, "untouched relation keeps its version");
    }

    #[test]
    fn digest_depends_on_contents_not_history() {
        // Insert-then-delete returns to the original contents, so the
        // digest returns too (digests name states, not histories).
        let original = db();
        let mut mutated = original.clone();
        let mut batch = WriteBatch::new();
        batch.insert("R", vec![Value::int(9), Value::num(9)]);
        mutated.apply_batch(&batch).unwrap();
        assert_ne!(database_digest(&mutated), database_digest(&original));
        let mut undo = WriteBatch::new();
        undo.delete("R", vec![Value::int(9), Value::num(9)]);
        mutated.apply_batch(&undo).unwrap();
        assert_eq!(database_digest(&mutated), database_digest(&original));
    }
}
