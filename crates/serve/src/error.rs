//! The serving layer's error type.

use qarith_core::MeasureError;
use qarith_sql::SqlError;

/// Anything that can go wrong serving one query.
#[derive(Debug)]
pub enum ServeError {
    /// The SQL text failed to parse or lower against the service's
    /// catalog.
    Sql(SqlError),
    /// Candidate generation or measurement failed.
    Measure(MeasureError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Sql(e) => write!(f, "SQL error: {e}"),
            ServeError::Measure(e) => write!(f, "measurement error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sql(e) => Some(e),
            ServeError::Measure(e) => Some(e),
        }
    }
}

impl From<SqlError> for ServeError {
    fn from(e: SqlError) -> ServeError {
        ServeError::Sql(e)
    }
}

impl From<MeasureError> for ServeError {
    fn from(e: MeasureError) -> ServeError {
        ServeError::Measure(e)
    }
}

impl From<qarith_engine::EngineError> for ServeError {
    fn from(e: qarith_engine::EngineError) -> ServeError {
        ServeError::Measure(e.into())
    }
}
