//! The serving layer's error type.

use qarith_core::MeasureError;
use qarith_sql::SqlError;
use qarith_types::TypeError;

/// Anything that can go wrong serving one query or write.
#[derive(Debug)]
pub enum ServeError {
    /// The SQL text failed to parse or lower against the service's
    /// catalog.
    Sql(SqlError),
    /// Candidate generation or measurement failed.
    Measure(MeasureError),
    /// A write batch was rejected (unknown relation, arity or sort
    /// mismatch). The batch is atomic, so nothing was applied and no
    /// epoch was published.
    Write(TypeError),
    /// A serving-layer lock was poisoned: some earlier request
    /// panicked while holding it, so its protected state can no longer
    /// be trusted. The current request fails cleanly instead of
    /// unwinding the whole service; the operator-facing fix is a
    /// restart (and the bug report is the panic that poisoned it).
    LockPoisoned(&'static str),
}

impl ServeError {
    /// Stable machine-readable error class, for transports that carry
    /// errors across process boundaries (the wire protocol's
    /// `err kind=<kind>` taxonomy in `qarith-net`): `"sql"` for
    /// rejected query text, `"measure"` for candidate-generation or
    /// measurement failures, `"write"` for rejected write batches,
    /// `"internal"` for serving-layer faults the client cannot fix
    /// (poisoned locks). Part of the wire contract — renaming a kind
    /// is a protocol-breaking change.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Sql(_) => "sql",
            ServeError::Measure(_) => "measure",
            ServeError::Write(_) => "write",
            ServeError::LockPoisoned(_) => "internal",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Sql(e) => write!(f, "SQL error: {e}"),
            ServeError::Measure(e) => write!(f, "measurement error: {e}"),
            ServeError::Write(e) => write!(f, "write error: {e}"),
            ServeError::LockPoisoned(what) => {
                write!(f, "internal error: {what} lock poisoned by an earlier panic")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sql(e) => Some(e),
            ServeError::Measure(e) => Some(e),
            ServeError::Write(e) => Some(e),
            ServeError::LockPoisoned(_) => None,
        }
    }
}

impl From<SqlError> for ServeError {
    fn from(e: SqlError) -> ServeError {
        ServeError::Sql(e)
    }
}

impl From<MeasureError> for ServeError {
    fn from(e: MeasureError) -> ServeError {
        ServeError::Measure(e)
    }
}

impl From<qarith_engine::EngineError> for ServeError {
    fn from(e: qarith_engine::EngineError) -> ServeError {
        ServeError::Measure(e.into())
    }
}
