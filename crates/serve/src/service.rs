//! The long-lived query service: prepared plans over a shared engine.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use qarith_core::{
    AnswerWithCertainty, BatchPlan, BatchStats, CertaintyCache, CertaintyEngine, MeasureOptions,
};
use qarith_engine::cq;
use qarith_trace::{LatencyStats, RequestTrace, SlowRecord, Stage, Tracer};
use qarith_types::{Catalog, Database};

use crate::admission::{AdmissionGate, AdmissionStats};
use crate::error::ServeError;
use crate::shard::{ShardedCacheConfig, ShardedCacheStats, ShardedNuCache};

/// Configuration of a [`QueryService`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Measurement options of the shared engine. The options'
    /// fingerprint keys the ν-cache, so every request served by one
    /// service shares one fingerprint — exactly the regime the cache is
    /// built for. [`BatchOptions::threads`] here is per-*request*
    /// fan-out; a service whose concurrency comes from its clients
    /// typically leaves it at 1.
    ///
    /// [`BatchOptions::threads`]: qarith_core::BatchOptions
    pub options: MeasureOptions,
    /// Sharding and memory budget of the serving-path ν-cache.
    pub cache: ShardedCacheConfig,
    /// Admission-control cap on concurrently executing queries;
    /// arrivals beyond it queue (see [`crate::admission`]).
    pub max_in_flight: usize,
    /// Cap on cached plans, with least-recently-used eviction (rounded
    /// up to 1). Fingerprints include literal values, so traffic whose
    /// literals vary per request (per-user thresholds) mints unbounded
    /// distinct templates — without a cap the plan cache would
    /// reintroduce the unbounded-memory failure the sharded ν-cache
    /// exists to prevent. Like ν-cache eviction, plan eviction is
    /// cost-only: plans are deterministic functions of the template,
    /// so a rebuilt plan is interchangeable with the evicted one.
    pub max_plans: usize,
    /// Slow-query capture threshold in nanoseconds; requests whose
    /// end-to-end time reaches it are recorded in the bounded
    /// slow-query log ([`QueryService::slow_queries`]). 0 (the
    /// default) disables capture. Tunable later via
    /// [`QueryService::set_slow_threshold`].
    pub slow_threshold_nanos: u64,
}

impl Default for ServeConfig {
    /// Default engine options, the default 16-shard/64 MiB cache, a
    /// 64-wide admission gate, and a 1024-plan cache.
    fn default() -> Self {
        ServeConfig {
            options: MeasureOptions::default(),
            cache: ShardedCacheConfig::default(),
            max_in_flight: 64,
            max_plans: 1024,
            slow_threshold_nanos: 0,
        }
    }
}

/// Service-level counters (the plan cache and request accounting; the
/// ν-cache and admission gate export their own blocks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries served (admitted and completed or failed).
    pub queries: u64,
    /// Requests whose template hit the plan cache.
    pub plan_hits: u64,
    /// Requests that had to build a plan (first sighting of a template,
    /// a concurrent race on one — each racer builds and counts — or a
    /// re-request of an evicted template).
    pub plan_misses: u64,
    /// Plans currently cached (≤ [`ServeConfig::max_plans`]).
    pub plans: u64,
    /// Plans evicted under the [`ServeConfig::max_plans`] cap since
    /// creation (cost shifted to rebuild; answers unchanged).
    pub plan_evictions: u64,
}

impl ServiceStats {
    /// The counters as stable `(name, value)` pairs, in declaration
    /// order — the machine-readable export `serve_bench` serializes
    /// into `BENCH_*.json`. Names are part of the JSON schema: renaming
    /// one is a baseline-breaking change.
    pub fn as_pairs(&self) -> [(&'static str, u64); 5] {
        [
            ("queries", self.queries),
            ("plan_hits", self.plan_hits),
            ("plan_misses", self.plan_misses),
            ("plans", self.plans),
            ("plan_evictions", self.plan_evictions),
        ]
    }
}

/// One served answer set.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Per-candidate answers, in candidate order (identical across
    /// requests for a fixed template — the service's database and
    /// options are fixed).
    pub answers: Vec<AnswerWithCertainty>,
    /// Batch accounting of this execution (cache hits vs fresh
    /// measurement).
    pub stats: BatchStats,
    /// `true` iff the template's plan came from the plan cache.
    pub plan_cached: bool,
    /// The template fingerprint the request mapped to.
    pub fingerprint: String,
    /// The request id minted at service entry (threaded into wire
    /// reply frames and slow-log records).
    pub request_id: qarith_trace::RequestId,
}

/// A long-lived, thread-safe query-serving engine: one loaded
/// [`Database`] plus one [`CertaintyEngine`], shared by any number of
/// client threads through `&self` (wrap the service in an [`Arc`] and
/// hand clones to clients).
///
/// Per request ([`QueryService::query`]):
///
/// 1. **admission** — block until the in-flight gate has room;
/// 2. **fingerprint** — normalize the SQL text
///    ([`qarith_sql::sql_fingerprint`]);
/// 3. **plan** — look the fingerprint up in the plan cache; on a miss,
///    parse → lower → generate candidates → prepare the batch
///    ([`CertaintyEngine::prepare_batch`]) and publish the plan;
/// 4. **execute** — run the plan's back half
///    ([`CertaintyEngine::execute_plan`]) against the bounded sharded
///    ν-cache: per-group cache lookup, measurement of the misses only.
///
/// **Determinism.** For a fixed service (database, options) every
/// request for a template returns bit-identical answers, regardless of
/// client concurrency, plan-cache state, or ν-cache eviction history:
/// plans are deterministic functions of the template, and measurements
/// are deterministic functions of (group, options) — see
/// [`qarith_core::nucache`]. The serving tests race clients against a
/// sequential reference to lock this in.
#[derive(Debug)]
pub struct QueryService {
    db: Database,
    catalog: Catalog,
    engine: CertaintyEngine,
    cache: Arc<ShardedNuCache>,
    plans: RwLock<HashMap<String, PlanEntry>>,
    max_plans: usize,
    plan_tick: AtomicU64,
    gate: AdmissionGate,
    queries: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    plan_evictions: AtomicU64,
    totals: BatchTotals,
    tracer: Tracer,
}

/// Running sums of every executed request's [`BatchStats`] (including
/// the nested rewrite block), so a long-lived service can export
/// batch-level accounting as monotone counters — the `/metrics`
/// endpoint of `qarith-net` scrapes these. Relaxed atomics: each field
/// is an independent monotone sum, never read transactionally.
#[derive(Debug, Default)]
struct BatchTotals {
    candidates: AtomicU64,
    certain: AtomicU64,
    groups: AtomicU64,
    measured: AtomicU64,
    dedup_hits: AtomicU64,
    cache_hits: AtomicU64,
    rw_groups: AtomicU64,
    rw_factored: AtomicU64,
    rw_factors: AtomicU64,
    rw_exact_factors: AtomicU64,
    rw_dim_before: AtomicU64,
    rw_dim_after: AtomicU64,
}

impl BatchTotals {
    fn absorb(&self, stats: &BatchStats) {
        let add = |counter: &AtomicU64, n: usize| {
            counter.fetch_add(n as u64, Ordering::Relaxed);
        };
        add(&self.candidates, stats.candidates);
        add(&self.certain, stats.certain);
        add(&self.groups, stats.groups);
        add(&self.measured, stats.measured);
        add(&self.dedup_hits, stats.dedup_hits);
        add(&self.cache_hits, stats.cache_hits);
        add(&self.rw_groups, stats.rewrite.groups);
        add(&self.rw_factored, stats.rewrite.factored);
        add(&self.rw_factors, stats.rewrite.factors);
        add(&self.rw_exact_factors, stats.rewrite.exact_factors);
        add(&self.rw_dim_before, stats.rewrite.dim_before);
        add(&self.rw_dim_after, stats.rewrite.dim_after);
    }

    fn snapshot(&self, threads: usize) -> BatchStats {
        let get = |counter: &AtomicU64| counter.load(Ordering::Relaxed) as usize;
        BatchStats {
            candidates: get(&self.candidates),
            certain: get(&self.certain),
            groups: get(&self.groups),
            measured: get(&self.measured),
            dedup_hits: get(&self.dedup_hits),
            cache_hits: get(&self.cache_hits),
            threads,
            rewrite: qarith_core::RewriteStats {
                groups: get(&self.rw_groups),
                factored: get(&self.rw_factored),
                factors: get(&self.rw_factors),
                exact_factors: get(&self.rw_exact_factors),
                dim_before: get(&self.rw_dim_before),
                dim_after: get(&self.rw_dim_after),
            },
        }
    }
}

/// A cached plan — the fully prepared template (parse → lower →
/// ground → canonicalize/dedup → rewrite, run once) — plus its recency
/// stamp. `last_used` is an atomic so hits can refresh it under the
/// read lock (the common path never takes the write lock).
#[derive(Debug)]
struct PlanEntry {
    plan: Arc<BatchPlan>,
    last_used: AtomicU64,
}

impl QueryService {
    /// A service over a loaded database. The database is owned (and
    /// immutable) for the service's lifetime: prepared plans embed
    /// candidates generated from it, so a mutable database would
    /// invalidate every plan.
    pub fn new(db: Database, config: ServeConfig) -> QueryService {
        let tracer = Tracer::new();
        tracer.set_slow_threshold(config.slow_threshold_nanos);
        let cache = Arc::new(ShardedNuCache::new(config.cache));
        let engine = CertaintyEngine::new(config.options)
            .with_shared_cache(cache.clone() as Arc<dyn CertaintyCache>);
        let catalog = db.catalog();
        QueryService {
            db,
            catalog,
            engine,
            cache,
            plans: RwLock::new(HashMap::new()),
            max_plans: config.max_plans.max(1),
            plan_tick: AtomicU64::new(0),
            gate: AdmissionGate::new(config.max_in_flight),
            queries: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            plan_evictions: AtomicU64::new(0),
            totals: BatchTotals::default(),
            tracer,
        }
    }

    /// Serves one SQL query. Blocks while the admission gate is full.
    ///
    /// Equivalent to [`QueryService::begin_trace`] →
    /// [`QueryService::query_with_trace`] →
    /// [`QueryService::finish_trace`] on the `"inproc"` route; callers
    /// that wrap the request in their own envelope (the wire layer)
    /// use those pieces directly so frame decode/encode time lands in
    /// the same trace.
    pub fn query(&self, sql: &str) -> Result<QueryResponse, ServeError> {
        let mut trace = self.begin_trace();
        let out = self.query_with_trace(sql, &mut trace);
        let fingerprint = out.as_ref().map_or("", |r| r.fingerprint.as_str());
        self.finish_trace(&trace, fingerprint, "inproc");
        out
    }

    /// Mints a [`RequestTrace`] (request id + start instant) for a
    /// request this caller will serve via
    /// [`QueryService::query_with_trace`].
    pub fn begin_trace(&self) -> RequestTrace {
        self.tracer.begin()
    }

    /// Serves one SQL query under a caller-owned trace: every pipeline
    /// stage (admission wait, fingerprint, plan lookup, prepare,
    /// ν-lookup, measure, rehydrate) records its duration into
    /// `trace`. Timing is observational only — answers are
    /// bit-identical to [`QueryService::query`]. The caller finishes
    /// the trace with [`QueryService::finish_trace`].
    pub fn query_with_trace(
        &self,
        sql: &str,
        trace: &mut RequestTrace,
    ) -> Result<QueryResponse, ServeError> {
        let _permit = {
            let _span = trace.span(Stage::AdmissionWait);
            self.gate.acquire()
        };
        self.queries.fetch_add(1, Ordering::Relaxed);
        let fingerprint = {
            let _span = trace.span(Stage::Fingerprint);
            qarith_sql::sql_fingerprint(sql)?
        };
        let (plan, plan_cached) = self.plan_for(sql, &fingerprint, trace)?;
        let outcome = self.engine.execute_plan_traced(&plan, Some(trace))?;
        self.totals.absorb(&outcome.stats);
        Ok(QueryResponse {
            answers: outcome.answers,
            stats: outcome.stats,
            plan_cached,
            fingerprint,
            request_id: trace.id(),
        })
    }

    /// Finishes a trace begun with [`QueryService::begin_trace`]:
    /// folds its per-stage durations into the service histograms
    /// ([`QueryService::latency_stats`]) and captures a slow-log
    /// record when the total crosses the configured threshold.
    /// `route` names the entry point (`"inproc"`, `"wire"`).
    pub fn finish_trace(&self, trace: &RequestTrace, fingerprint: &str, route: &'static str) {
        let epsilon = self.engine.options().afpras.epsilon;
        self.tracer.finish(trace, fingerprint, epsilon, route);
    }

    /// Plan-cache lookup with build-on-miss and LRU eviction under
    /// [`ServeConfig::max_plans`]. Racing builders for one fingerprint
    /// each build (plans are deterministic, so the copies are
    /// interchangeable); the first publication wins and the rest adopt
    /// it, keeping the cache single-entry per template.
    fn plan_for(
        &self,
        sql: &str,
        fingerprint: &str,
        trace: &mut RequestTrace,
    ) -> Result<(Arc<BatchPlan>, bool), ServeError> {
        // A poisoned plan-cache lock means an earlier request panicked
        // while publishing; the map may hold a half-finished update, so
        // fail this request cleanly rather than trusting it (the
        // ν-cache, by contrast, can degrade to misses — see `shard`).
        fn poisoned<Guard>(_: std::sync::PoisonError<Guard>) -> ServeError {
            ServeError::LockPoisoned("plan cache")
        }
        {
            let _span = trace.span(Stage::PlanLookup);
            if let Some(entry) = self.plans.read().map_err(poisoned)?.get(fingerprint) {
                self.plan_hits.fetch_add(1, Ordering::Relaxed);
                entry
                    .last_used
                    .store(self.plan_tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                return Ok((entry.plan.clone(), true));
            }
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        // Build outside any lock: candidate generation and preparation
        // are the expensive half, and other templates must keep flowing.
        let built = Arc::new(self.build_plan(sql, trace)?);
        let tick = self.plan_tick.fetch_add(1, Ordering::Relaxed);
        let _span = trace.span(Stage::PlanLookup);
        let mut plans = self.plans.write().map_err(poisoned)?;
        if !plans.contains_key(fingerprint) {
            // Evict least-recently-used templates down to cap − 1. The
            // O(n) scan is fine: it runs only on publication, which is
            // already the expensive (plan-building) path, and n ≤ cap.
            while plans.len() >= self.max_plans {
                let victim = plans
                    .iter()
                    .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                    .map(|(k, _)| k.clone());
                let Some(victim) = victim else { break };
                plans.remove(&victim);
                self.plan_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let plan = plans
            .entry(fingerprint.to_string())
            .or_insert_with(|| PlanEntry { plan: built, last_used: AtomicU64::new(tick) })
            .plan
            .clone();
        Ok((plan, false))
    }

    /// The front half, template-granular: parse + lower against the
    /// catalog, generate candidates under the template's LIMIT
    /// semantics (folded into the executor options), prepare the batch.
    /// Both the SQL front (parse, lower, candidate generation —
    /// "grounding") and the engine's batch preparation accumulate into
    /// [`Stage::Prepare`]: together they are the template-build cost a
    /// plan-cache hit saves.
    fn build_plan(&self, sql: &str, trace: &mut RequestTrace) -> Result<BatchPlan, ServeError> {
        let candidates = {
            let _span = trace.span(Stage::Prepare);
            let lowered = qarith_sql::compile(sql, &self.catalog)?;
            cq::execute(&lowered.query, &self.db, &lowered.cq_options())?
        };
        Ok(self.engine.prepare_batch_traced(candidates, Some(trace)))
    }

    /// The served database (read-only).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The engine's options (fixed for the service's lifetime).
    pub fn options(&self) -> &MeasureOptions {
        self.engine.options()
    }

    /// Service-level counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queries: self.queries.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            // Counters must never panic; a poisoned cache reports 0
            // resident plans (requests themselves fail with
            // `LockPoisoned`, which is the visible signal).
            plans: self.plans.read().map_or(0, |p| p.len() as u64),
            plan_evictions: self.plan_evictions.load(Ordering::Relaxed),
        }
    }

    /// Counters of the bounded sharded ν-cache.
    pub fn cache_stats(&self) -> ShardedCacheStats {
        self.cache.stats()
    }

    /// Running sums of every executed request's [`BatchStats`]
    /// (including the nested rewrite block) since creation, with
    /// `threads` reporting the configured per-request fan-out. This is
    /// the monotone-counter view a metrics scrape wants; per-request
    /// accounting stays on [`QueryResponse::stats`].
    pub fn batch_totals(&self) -> BatchStats {
        self.totals.snapshot(self.engine.options().batch.threads)
    }

    /// Counters of the admission gate.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.gate.stats()
    }

    /// A snapshot of every per-stage latency histogram (admission wait
    /// through frame encode, plus the end-to-end total), in
    /// [`Stage::ALL`] order. This is the `/metrics` histogram source
    /// and the schema-v4 BENCH per-stage summary source.
    pub fn latency_stats(&self) -> LatencyStats {
        self.tracer.latency_stats()
    }

    /// The slow-query log: every request whose end-to-end time reached
    /// [`ServeConfig::slow_threshold_nanos`], oldest first, bounded by
    /// the ring capacity.
    pub fn slow_queries(&self) -> Vec<SlowRecord> {
        self.tracer.slow_queries()
    }

    /// The slow-query log as a JSON array (the `GET /slow` body).
    pub fn slow_queries_json(&self) -> String {
        self.tracer.slow_json()
    }

    /// Adjusts the slow-query capture threshold at runtime
    /// (nanoseconds; 0 disables capture).
    pub fn set_slow_threshold(&self, nanos: u64) {
        self.tracer.set_slow_threshold(nanos);
    }

    /// The slow-query capture threshold currently in force.
    pub fn slow_threshold(&self) -> u64 {
        self.tracer.slow_threshold()
    }
}
