//! The long-lived query service: prepared plans over a shared engine.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use qarith_core::{
    AnswerWithCertainty, BatchPlan, BatchStats, CertaintyCache, CertaintyEngine, MeasureOptions,
};
use qarith_engine::cq;
use qarith_query::Formula;
use qarith_trace::{LatencyStats, RequestTrace, SlowRecord, Stage, Tracer};
use qarith_types::{Catalog, Database, WriteBatch, WriteOp};

use crate::admission::{AdmissionGate, AdmissionStats};
use crate::epoch::{Snapshot, WriteOutcome};
use crate::error::ServeError;
use crate::shard::{ShardedCacheConfig, ShardedCacheStats, ShardedNuCache};

/// Configuration of a [`QueryService`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Measurement options of the shared engine. The options'
    /// fingerprint keys the ν-cache, so every request served by one
    /// service shares one fingerprint — exactly the regime the cache is
    /// built for. [`BatchOptions::threads`] here is per-*request*
    /// fan-out; a service whose concurrency comes from its clients
    /// typically leaves it at 1.
    ///
    /// [`BatchOptions::threads`]: qarith_core::BatchOptions
    pub options: MeasureOptions,
    /// Sharding and memory budget of the serving-path ν-cache.
    pub cache: ShardedCacheConfig,
    /// Admission-control cap on concurrently executing queries;
    /// arrivals beyond it queue (see [`crate::admission`]).
    pub max_in_flight: usize,
    /// Cap on cached plans, with least-recently-used eviction (rounded
    /// up to 1). Fingerprints include literal values, so traffic whose
    /// literals vary per request (per-user thresholds) mints unbounded
    /// distinct templates — without a cap the plan cache would
    /// reintroduce the unbounded-memory failure the sharded ν-cache
    /// exists to prevent. Like ν-cache eviction, plan eviction is
    /// cost-only: plans are deterministic functions of the template,
    /// so a rebuilt plan is interchangeable with the evicted one.
    pub max_plans: usize,
    /// Slow-query capture threshold in nanoseconds; requests whose
    /// end-to-end time reaches it are recorded in the bounded
    /// slow-query log ([`QueryService::slow_queries`]). 0 (the
    /// default) disables capture. Tunable later via
    /// [`QueryService::set_slow_threshold`].
    pub slow_threshold_nanos: u64,
}

impl Default for ServeConfig {
    /// Default engine options, the default 16-shard/64 MiB cache, a
    /// 64-wide admission gate, and a 1024-plan cache.
    fn default() -> Self {
        ServeConfig {
            options: MeasureOptions::default(),
            cache: ShardedCacheConfig::default(),
            max_in_flight: 64,
            max_plans: 1024,
            slow_threshold_nanos: 0,
        }
    }
}

/// Service-level counters (the plan cache, request accounting, and the
/// write path; the ν-cache and admission gate export their own blocks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries served (admitted and completed or failed).
    pub queries: u64,
    /// Requests whose template hit the plan cache (with its relation
    /// versions still current).
    pub plan_hits: u64,
    /// Requests that had to build a plan (first sighting of a template,
    /// a concurrent race on one — each racer builds and counts — a
    /// re-request of an evicted template, or a template whose plan a
    /// write invalidated).
    pub plan_misses: u64,
    /// Plans currently cached (≤ [`ServeConfig::max_plans`]).
    pub plans: u64,
    /// Plans evicted under the [`ServeConfig::max_plans`] cap since
    /// creation (cost shifted to rebuild; answers unchanged).
    pub plan_evictions: u64,
    /// The current epoch number (a gauge: 0 is the load-time database,
    /// each committed write batch publishes the next).
    pub epoch: u64,
    /// Write batches committed ([`QueryService::apply`] calls that
    /// returned `Ok`).
    pub writes: u64,
    /// Individual ops inside committed batches (including well-typed
    /// no-ops).
    pub write_ops: u64,
    /// Cached plans dropped because a write touched a relation they
    /// depend on (the eager sweep plus lazy stale-hit removals).
    pub plan_invalidations: u64,
}

impl ServiceStats {
    /// The counters as stable `(name, value)` pairs, in declaration
    /// order — the machine-readable export `serve_bench` serializes
    /// into `BENCH_*.json`. Names are part of the JSON schema: renaming
    /// one is a baseline-breaking change.
    pub fn as_pairs(&self) -> [(&'static str, u64); 9] {
        [
            ("queries", self.queries),
            ("plan_hits", self.plan_hits),
            ("plan_misses", self.plan_misses),
            ("plans", self.plans),
            ("plan_evictions", self.plan_evictions),
            ("epoch", self.epoch),
            ("writes", self.writes),
            ("write_ops", self.write_ops),
            ("plan_invalidations", self.plan_invalidations),
        ]
    }
}

/// One served answer set.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Per-candidate answers, in candidate order (identical across
    /// requests for a fixed template *and epoch* — the service's
    /// options are fixed, and `epoch`/`db_digest` name the database
    /// state the answers are a deterministic function of).
    pub answers: Vec<AnswerWithCertainty>,
    /// Batch accounting of this execution (cache hits vs fresh
    /// measurement).
    pub stats: BatchStats,
    /// `true` iff the template's plan came from the plan cache.
    pub plan_cached: bool,
    /// The template fingerprint the request mapped to.
    pub fingerprint: String,
    /// The request id minted at service entry (threaded into wire
    /// reply frames and slow-log records).
    pub request_id: qarith_trace::RequestId,
    /// The epoch this request executed against (pinned at entry; a
    /// concurrent write publishes a new epoch without disturbing it).
    pub epoch: u64,
    /// Content digest of that epoch's database — the bit-pinning
    /// identity the torture tests match against published epochs.
    pub db_digest: u64,
}

/// A long-lived, thread-safe query-serving engine: one epoch-versioned
/// [`Database`] plus one [`CertaintyEngine`], shared by any number of
/// client threads through `&self` (wrap the service in an [`Arc`] and
/// hand clones to clients).
///
/// Per request ([`QueryService::query`]):
///
/// 1. **admission** — block until the in-flight gate has room;
/// 2. **fingerprint** — normalize the SQL text
///    ([`qarith_sql::sql_fingerprint`]);
/// 3. **snapshot** — pin the current epoch ([`crate::epoch`]): the
///    whole request executes against one immutable database;
/// 4. **plan** — look the fingerprint up in the plan cache and check
///    that the plan's relation versions are still current; on a miss,
///    parse → lower → generate candidates → prepare the batch
///    ([`CertaintyEngine::prepare_batch`]) and publish the plan;
/// 5. **execute** — run the plan's back half
///    ([`CertaintyEngine::execute_plan`]) against the bounded sharded
///    ν-cache: per-group cache lookup, measurement of the misses only.
///
/// Writes ([`QueryService::apply`]) run beside reads: one writer at a
/// time clones the current database, applies its [`WriteBatch`], and
/// publishes the result as the next epoch with a single pointer swap —
/// in-flight readers keep their pinned snapshot, so no request ever
/// observes a half-applied batch.
///
/// **Determinism.** For a fixed epoch (named by
/// [`QueryResponse::db_digest`]) and fixed options, every request for
/// a template returns bit-identical answers, regardless of client
/// concurrency, plan-cache state, or ν-cache eviction and invalidation
/// history: plans are deterministic functions of (template, relation
/// contents), and measurements are deterministic functions of (group,
/// options) — see [`qarith_core::nucache`]. The mutation tests lock
/// this in by comparing against cold-cache rebuilds on the final
/// state.
#[derive(Debug)]
pub struct QueryService {
    /// The current epoch, behind the `EpochStore` lock (see
    /// `analyze.toml`): readers clone the `Arc` out and drop the guard
    /// immediately ([`QueryService::snapshot`]); the writer swaps the
    /// pointer under the write half (`publish`).
    snapshot: RwLock<Arc<Snapshot>>,
    /// Serializes writers for the whole build-next-epoch critical
    /// section (`EpochWriter` in the declared hierarchy — strictly
    /// above `EpochStore`, so a writer may read and swap the pointer
    /// while holding it).
    epoch_writer: Mutex<()>,
    catalog: Catalog,
    engine: CertaintyEngine,
    cache: Arc<ShardedNuCache>,
    plans: RwLock<HashMap<String, PlanEntry>>,
    max_plans: usize,
    plan_tick: AtomicU64,
    gate: AdmissionGate,
    queries: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    plan_evictions: AtomicU64,
    writes: AtomicU64,
    write_ops: AtomicU64,
    plan_invalidations: AtomicU64,
    totals: BatchTotals,
    tracer: Tracer,
}

/// Running sums of every executed request's [`BatchStats`] (including
/// the nested rewrite block), so a long-lived service can export
/// batch-level accounting as monotone counters — the `/metrics`
/// endpoint of `qarith-net` scrapes these. Relaxed atomics: each field
/// is an independent monotone sum, never read transactionally.
#[derive(Debug, Default)]
struct BatchTotals {
    candidates: AtomicU64,
    certain: AtomicU64,
    groups: AtomicU64,
    measured: AtomicU64,
    dedup_hits: AtomicU64,
    cache_hits: AtomicU64,
    rw_groups: AtomicU64,
    rw_factored: AtomicU64,
    rw_factors: AtomicU64,
    rw_exact_factors: AtomicU64,
    rw_dim_before: AtomicU64,
    rw_dim_after: AtomicU64,
}

impl BatchTotals {
    fn absorb(&self, stats: &BatchStats) {
        let add = |counter: &AtomicU64, n: usize| {
            counter.fetch_add(n as u64, Ordering::Relaxed);
        };
        add(&self.candidates, stats.candidates);
        add(&self.certain, stats.certain);
        add(&self.groups, stats.groups);
        add(&self.measured, stats.measured);
        add(&self.dedup_hits, stats.dedup_hits);
        add(&self.cache_hits, stats.cache_hits);
        add(&self.rw_groups, stats.rewrite.groups);
        add(&self.rw_factored, stats.rewrite.factored);
        add(&self.rw_factors, stats.rewrite.factors);
        add(&self.rw_exact_factors, stats.rewrite.exact_factors);
        add(&self.rw_dim_before, stats.rewrite.dim_before);
        add(&self.rw_dim_after, stats.rewrite.dim_after);
    }

    fn snapshot(&self, threads: usize) -> BatchStats {
        let get = |counter: &AtomicU64| counter.load(Ordering::Relaxed) as usize;
        BatchStats {
            candidates: get(&self.candidates),
            certain: get(&self.certain),
            groups: get(&self.groups),
            measured: get(&self.measured),
            dedup_hits: get(&self.dedup_hits),
            cache_hits: get(&self.cache_hits),
            threads,
            rewrite: qarith_core::RewriteStats {
                groups: get(&self.rw_groups),
                factored: get(&self.rw_factored),
                factors: get(&self.rw_factors),
                exact_factors: get(&self.rw_exact_factors),
                dim_before: get(&self.rw_dim_before),
                dim_after: get(&self.rw_dim_after),
            },
        }
    }
}

/// A cached plan — the fully prepared template (parse → lower →
/// ground → canonicalize/dedup → rewrite, run once) — plus its recency
/// stamp and the relation versions it was grounded against. A plan
/// embeds candidates generated from specific relation contents, so it
/// is reusable exactly while every relation in `deps` still has the
/// version it had at build time; a hit on a stale plan is treated as a
/// miss and the entry replaced. `last_used` is an atomic so hits can
/// refresh it under the read lock (the common path never takes the
/// write lock).
#[derive(Debug)]
struct PlanEntry {
    plan: Arc<BatchPlan>,
    /// The relations the template reads, with their versions at build
    /// time ([`Snapshot::version_of`]).
    deps: Vec<(String, u64)>,
    last_used: AtomicU64,
}

impl PlanEntry {
    /// `true` while every dependency still has its build-time version.
    fn current(&self, snap: &Snapshot) -> bool {
        self.deps.iter().all(|(rel, v)| snap.version_of(rel) == *v)
    }
}

/// Collects the relation names a lowered query body reads (the plan's
/// invalidation footprint). Over-approximation would be sound; this is
/// exact — every `Rel` atom names a relation the grounding consulted.
fn collect_relations(formula: &Formula, out: &mut BTreeSet<String>) {
    match formula {
        Formula::Rel { relation, .. } => {
            out.insert(relation.as_ref().to_owned());
        }
        Formula::Not(inner) => collect_relations(inner, out),
        Formula::And(parts) | Formula::Or(parts) => {
            for part in parts {
                collect_relations(part, out);
            }
        }
        Formula::Exists(_, inner) | Formula::Forall(_, inner) => collect_relations(inner, out),
        Formula::True | Formula::False | Formula::BaseEq(..) | Formula::Cmp(..) => {}
    }
}

impl QueryService {
    /// A service over a loaded database, published as epoch 0. The
    /// catalog is fixed for the service's lifetime (writes mutate
    /// tuples, never schemas — there is no DDL), so compiled templates
    /// always lower against a current catalog.
    pub fn new(db: Database, config: ServeConfig) -> QueryService {
        let tracer = Tracer::new();
        tracer.set_slow_threshold(config.slow_threshold_nanos);
        let cache = Arc::new(ShardedNuCache::new(config.cache));
        let engine = CertaintyEngine::new(config.options)
            .with_shared_cache(cache.clone() as Arc<dyn CertaintyCache>);
        let catalog = db.catalog();
        QueryService {
            snapshot: RwLock::new(Arc::new(Snapshot::initial(db))),
            epoch_writer: Mutex::new(()),
            catalog,
            engine,
            cache,
            plans: RwLock::new(HashMap::new()),
            max_plans: config.max_plans.max(1),
            plan_tick: AtomicU64::new(0),
            gate: AdmissionGate::new(config.max_in_flight),
            queries: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            plan_evictions: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_ops: AtomicU64::new(0),
            plan_invalidations: AtomicU64::new(0),
            totals: BatchTotals::default(),
            tracer,
        }
    }

    /// Serves one SQL query. Blocks while the admission gate is full.
    ///
    /// Equivalent to [`QueryService::begin_trace`] →
    /// [`QueryService::query_with_trace`] →
    /// [`QueryService::finish_trace`] on the `"inproc"` route; callers
    /// that wrap the request in their own envelope (the wire layer)
    /// use those pieces directly so frame decode/encode time lands in
    /// the same trace.
    pub fn query(&self, sql: &str) -> Result<QueryResponse, ServeError> {
        let mut trace = self.begin_trace();
        let out = self.query_with_trace(sql, &mut trace);
        let fingerprint = out.as_ref().map_or("", |r| r.fingerprint.as_str());
        self.finish_trace(&trace, fingerprint, "inproc");
        out
    }

    /// Mints a [`RequestTrace`] (request id + start instant) for a
    /// request this caller will serve via
    /// [`QueryService::query_with_trace`] or
    /// [`QueryService::apply_with_trace`].
    pub fn begin_trace(&self) -> RequestTrace {
        self.tracer.begin()
    }

    /// Serves one SQL query under a caller-owned trace: every pipeline
    /// stage (admission wait, fingerprint, plan lookup, prepare,
    /// ν-lookup, measure, rehydrate) records its duration into
    /// `trace`. Timing is observational only — answers are
    /// bit-identical to [`QueryService::query`]. The caller finishes
    /// the trace with [`QueryService::finish_trace`].
    pub fn query_with_trace(
        &self,
        sql: &str,
        trace: &mut RequestTrace,
    ) -> Result<QueryResponse, ServeError> {
        let _permit = {
            let _span = trace.span(Stage::AdmissionWait);
            self.gate.acquire()
        };
        self.queries.fetch_add(1, Ordering::Relaxed);
        let fingerprint = {
            let _span = trace.span(Stage::Fingerprint);
            qarith_sql::sql_fingerprint(sql)?
        };
        // Pin the epoch once: plan validation, candidate generation,
        // and measurement all see this one immutable database, however
        // many epochs writers publish meanwhile.
        let snap = self.snapshot()?;
        let (plan, plan_cached) = self.plan_for(sql, &fingerprint, &snap, trace)?;
        let outcome = self.engine.execute_plan_traced(&plan, Some(trace))?;
        self.totals.absorb(&outcome.stats);
        Ok(QueryResponse {
            answers: outcome.answers,
            stats: outcome.stats,
            plan_cached,
            fingerprint,
            request_id: trace.id(),
            epoch: snap.epoch,
            db_digest: snap.digest,
        })
    }

    /// Applies one [`WriteBatch`], publishing the next epoch. Writers
    /// serialize (one epoch builder at a time); readers are never
    /// blocked beyond the pointer swap. The batch is atomic: a type
    /// error publishes nothing.
    ///
    /// Equivalent to [`QueryService::begin_trace`] →
    /// [`QueryService::apply_with_trace`] →
    /// [`QueryService::finish_trace`] on the `"write"` route.
    pub fn apply(&self, batch: &WriteBatch) -> Result<WriteOutcome, ServeError> {
        let mut trace = self.begin_trace();
        let out = self.apply_with_trace(batch, &mut trace);
        self.finish_trace(&trace, "", "write");
        out
    }

    /// [`QueryService::apply`] under a caller-owned trace: epoch
    /// construction records into [`Stage::WriteApply`], cache and plan
    /// invalidation into [`Stage::Invalidate`].
    ///
    /// Writes bypass the admission gate — they serialize on the epoch
    /// writer lock instead, and gating them behind query traffic would
    /// let a full gate starve the write path the queries themselves
    /// are waiting on.
    pub fn apply_with_trace(
        &self,
        batch: &WriteBatch,
        trace: &mut RequestTrace,
    ) -> Result<WriteOutcome, ServeError> {
        let _writer =
            self.epoch_writer.lock().map_err(|_| ServeError::LockPoisoned("epoch writer"))?;
        let (next, summary, touched) = {
            let _span = trace.span(Stage::WriteApply);
            let current = self.snapshot()?;
            let mut db = (*current.db).clone();
            let summary = db.apply_batch(batch).map_err(ServeError::Write)?;
            // Conservative footprint: every relation the batch names.
            // A batch of pure no-ops changed nothing, so it bumps no
            // versions (and therefore invalidates nothing), but still
            // publishes an epoch so every committed write has one.
            let touched: Vec<String> = if summary.applied > 0 {
                let names: BTreeSet<&str> = batch.ops.iter().map(WriteOp::relation).collect();
                names.into_iter().map(str::to_owned).collect()
            } else {
                Vec::new()
            };
            let next = Arc::new(current.next(db, &touched));
            self.publish(next.clone())?;
            (next, summary, touched)
        };
        let (invalidated_keys, invalidated_entries, plans_invalidated) = {
            let _span = trace.span(Stage::Invalidate);
            let plans_invalidated = self.sweep_plans(&touched)?;
            self.plan_invalidations.fetch_add(plans_invalidated, Ordering::Relaxed);
            let (keys, entries) = self.cache.invalidate_relations(&touched);
            (keys, entries, plans_invalidated)
        };
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.write_ops.fetch_add(batch.ops.len() as u64, Ordering::Relaxed);
        Ok(WriteOutcome {
            epoch: next.epoch,
            db_digest: next.digest,
            applied: summary.applied as u64,
            noops: summary.noops as u64,
            invalidated_keys,
            invalidated_entries,
            plans_invalidated,
        })
    }

    /// Finishes a trace begun with [`QueryService::begin_trace`]:
    /// folds its per-stage durations into the service histograms
    /// ([`QueryService::latency_stats`]) and captures a slow-log
    /// record when the total crosses the configured threshold.
    /// `route` names the entry point (`"inproc"`, `"wire"`,
    /// `"write"`).
    pub fn finish_trace(&self, trace: &RequestTrace, fingerprint: &str, route: &'static str) {
        let epsilon = self.engine.options().afpras.epsilon;
        self.tracer.finish(trace, fingerprint, epsilon, route);
    }

    /// The current snapshot. The `EpochStore` read guard is confined
    /// to this body: callers get the `Arc` and the lock is already
    /// released, so no downstream lock is ever taken under it.
    pub fn snapshot(&self) -> Result<Arc<Snapshot>, ServeError> {
        match self.snapshot.read() {
            Ok(guard) => Ok(guard.clone()),
            // A poisoned epoch store means a writer panicked mid-swap;
            // the pointer itself is always whole (the swap is one
            // assignment), but the poison marks the writer's batch as
            // abandoned — fail requests cleanly and let the operator
            // restart.
            Err(_) => Err(ServeError::LockPoisoned("epoch store")),
        }
    }

    /// Publishes the next epoch (the write half of the `EpochStore`
    /// lock, confined to this body; the caller holds `EpochWriter`).
    fn publish(&self, next: Arc<Snapshot>) -> Result<(), ServeError> {
        match self.snapshot.write() {
            Ok(mut guard) => {
                *guard = next;
                Ok(())
            }
            Err(_) => Err(ServeError::LockPoisoned("epoch store")),
        }
    }

    /// Eagerly drops cached plans that depend on any touched relation,
    /// returning how many. Racing readers that already cloned such a
    /// plan are unaffected — their snapshot still has the versions the
    /// plan was built for.
    fn sweep_plans(&self, touched: &[String]) -> Result<u64, ServeError> {
        if touched.is_empty() {
            return Ok(0);
        }
        let mut plans = self.plans.write().map_err(|_| ServeError::LockPoisoned("plan cache"))?;
        let before = plans.len();
        plans
            .retain(|_, entry| !entry.deps.iter().any(|(rel, _)| touched.iter().any(|t| t == rel)));
        Ok((before - plans.len()) as u64)
    }

    /// Plan-cache lookup with build-on-miss, version validation, and
    /// LRU eviction under [`ServeConfig::max_plans`]. Racing builders
    /// for one fingerprint each build (plans are deterministic given
    /// the relation contents, so copies built against one snapshot are
    /// interchangeable); the first publication wins and the rest adopt
    /// it — unless its versions are stale for this request's snapshot,
    /// in which case the fresher build replaces it.
    fn plan_for(
        &self,
        sql: &str,
        fingerprint: &str,
        snap: &Snapshot,
        trace: &mut RequestTrace,
    ) -> Result<(Arc<BatchPlan>, bool), ServeError> {
        // A poisoned plan-cache lock means an earlier request panicked
        // while publishing; the map may hold a half-finished update, so
        // fail this request cleanly rather than trusting it (the
        // ν-cache, by contrast, can degrade to misses — see `shard`).
        fn poisoned<Guard>(_: std::sync::PoisonError<Guard>) -> ServeError {
            ServeError::LockPoisoned("plan cache")
        }
        {
            let _span = trace.span(Stage::PlanLookup);
            if let Some(entry) = self.plans.read().map_err(poisoned)?.get(fingerprint) {
                if entry.current(snap) {
                    self.plan_hits.fetch_add(1, Ordering::Relaxed);
                    entry
                        .last_used
                        .store(self.plan_tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                    return Ok((entry.plan.clone(), true));
                }
                // Stale: a write bumped one of the plan's relations
                // after the eager sweep raced past this entry, or this
                // reader pinned a newer snapshot than the builder's.
                // Fall through to a rebuild against our snapshot.
            }
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        // Build outside any lock: candidate generation and preparation
        // are the expensive half, and other templates must keep flowing.
        let (built, deps) = self.build_plan(sql, snap, trace)?;
        let built = Arc::new(built);
        // Register the plan's group keys in the delta index before
        // publication, so a write landing between the two still finds
        // them.
        let relations: Vec<String> = deps.iter().map(|(rel, _)| rel.clone()).collect();
        self.cache.register(&relations, built.group_keys().flatten());
        let tick = self.plan_tick.fetch_add(1, Ordering::Relaxed);
        let _span = trace.span(Stage::PlanLookup);
        let mut plans = self.plans.write().map_err(poisoned)?;
        let stale = plans.get(fingerprint).is_some_and(|entry| !entry.current(snap));
        if stale {
            // Lazy invalidation: the resident plan predates a write.
            // Replace it with ours (counted alongside the eager
            // sweep's removals).
            plans.remove(fingerprint);
            self.plan_invalidations.fetch_add(1, Ordering::Relaxed);
        }
        if !plans.contains_key(fingerprint) {
            // Evict least-recently-used templates down to cap − 1. The
            // O(n) scan is fine: it runs only on publication, which is
            // already the expensive (plan-building) path, and n ≤ cap.
            while plans.len() >= self.max_plans {
                let victim = plans
                    .iter()
                    .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                    .map(|(k, _)| k.clone());
                let Some(victim) = victim else { break };
                plans.remove(&victim);
                self.plan_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let plan = plans
            .entry(fingerprint.to_string())
            .or_insert_with(|| PlanEntry { plan: built, deps, last_used: AtomicU64::new(tick) })
            .plan
            .clone();
        Ok((plan, false))
    }

    /// The front half, template-granular: parse + lower against the
    /// catalog, generate candidates under the template's LIMIT
    /// semantics (folded into the executor options), prepare the
    /// batch. Returns the plan plus its relation-version dependencies
    /// against `snap`. Both the SQL front (parse, lower, candidate
    /// generation — "grounding") and the engine's batch preparation
    /// accumulate into [`Stage::Prepare`]: together they are the
    /// template-build cost a plan-cache hit saves.
    fn build_plan(
        &self,
        sql: &str,
        snap: &Snapshot,
        trace: &mut RequestTrace,
    ) -> Result<(BatchPlan, Vec<(String, u64)>), ServeError> {
        let (candidates, deps) = {
            let _span = trace.span(Stage::Prepare);
            let lowered = qarith_sql::compile(sql, &self.catalog)?;
            let mut relations = BTreeSet::new();
            collect_relations(lowered.query.body(), &mut relations);
            let deps: Vec<(String, u64)> = relations
                .into_iter()
                .map(|rel| {
                    let version = snap.version_of(&rel);
                    (rel, version)
                })
                .collect();
            (cq::execute(&lowered.query, &snap.db, &lowered.cq_options())?, deps)
        };
        Ok((self.engine.prepare_batch_traced(candidates, Some(trace)), deps))
    }

    /// The engine's options (fixed for the service's lifetime).
    pub fn options(&self) -> &MeasureOptions {
        self.engine.options()
    }

    /// Service-level counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queries: self.queries.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            // Counters must never panic; a poisoned cache reports 0
            // resident plans (requests themselves fail with
            // `LockPoisoned`, which is the visible signal).
            plans: self.plans.read().map_or(0, |p| p.len() as u64),
            plan_evictions: self.plan_evictions.load(Ordering::Relaxed),
            // Same policy for the epoch gauge on a poisoned store.
            epoch: self.snapshot().map_or(0, |s| s.epoch),
            writes: self.writes.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            plan_invalidations: self.plan_invalidations.load(Ordering::Relaxed),
        }
    }

    /// Counters of the bounded sharded ν-cache.
    pub fn cache_stats(&self) -> ShardedCacheStats {
        self.cache.stats()
    }

    /// Running sums of every executed request's [`BatchStats`]
    /// (including the nested rewrite block) since creation, with
    /// `threads` reporting the configured per-request fan-out. This is
    /// the monotone-counter view a metrics scrape wants; per-request
    /// accounting stays on [`QueryResponse::stats`].
    pub fn batch_totals(&self) -> BatchStats {
        self.totals.snapshot(self.engine.options().batch.threads)
    }

    /// Counters of the admission gate.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.gate.stats()
    }

    /// A snapshot of every per-stage latency histogram (admission wait
    /// through write apply and invalidate, plus the end-to-end total),
    /// in [`Stage::ALL`] order. This is the `/metrics` histogram
    /// source and the schema-v4 BENCH per-stage summary source.
    pub fn latency_stats(&self) -> LatencyStats {
        self.tracer.latency_stats()
    }

    /// The slow-query log: every request whose end-to-end time reached
    /// [`ServeConfig::slow_threshold_nanos`], oldest first, bounded by
    /// the ring capacity.
    pub fn slow_queries(&self) -> Vec<SlowRecord> {
        self.tracer.slow_queries()
    }

    /// The slow-query log as a JSON array (the `GET /slow` body).
    pub fn slow_queries_json(&self) -> String {
        self.tracer.slow_json()
    }

    /// Adjusts the slow-query capture threshold at runtime
    /// (nanoseconds; 0 disables capture).
    pub fn set_slow_threshold(&self, nanos: u64) {
        self.tracer.set_slow_threshold(nanos);
    }

    /// The slow-query capture threshold currently in force.
    pub fn slow_threshold(&self) -> u64 {
        self.tracer.slow_threshold()
    }
}
