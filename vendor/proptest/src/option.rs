//! Option strategies (`prop::option::of`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A strategy producing `Option`s of an inner strategy's values.
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        // Match upstream's default: Some three times out of four.
        if rng.gen::<f64>() < 0.75 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// Generates `Some` of the inner strategy's values most of the time,
/// `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
