//! Test configuration and failure plumbing for the [`crate::proptest!`]
//! macro.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases with all other settings default.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property (produced by `prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The seed a test's generator starts from (FNV-1a over the test name),
/// reported in failure messages so a failing case can be replayed by
/// re-generating the same case sequence.
pub fn deterministic_seed(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A generator seeded from the test's name, so every run of a given test
/// draws the same case sequence and failures reproduce deterministically.
pub fn deterministic_rng(test_name: &str) -> StdRng {
    StdRng::seed_from_u64(deterministic_seed(test_name))
}
