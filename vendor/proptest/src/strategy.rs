//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of an associated type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a generation function.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let this = Rc::new(self);
        BoxedStrategy { gen: Rc::new(move |rng| this.generate(rng)) }
    }

    /// Builds recursive structures: at each of `depth` levels, generation
    /// flips between the plain strategy and `recurse` applied to the
    /// previous level. `_desired_size` and `_expected_branch_size` are
    /// accepted for signature compatibility and ignored (no shrinking
    /// machinery to budget for).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            let shallow = leaf.clone();
            strat = BoxedStrategy {
                gen: Rc::new(move |rng: &mut StdRng| {
                    if rng.gen::<f64>() < 0.5 {
                        shallow.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }),
            };
        }
        strat
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    pub(crate) gen: Rc<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { gen: Rc::clone(&self.gen) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.gen)(rng)
    }
}

/// A strategy that always yields a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// A uniform choice between same-typed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}
