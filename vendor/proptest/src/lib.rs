//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest's API that the qarith test suites
//! use, keeping names and shapes identical so the real crate can be
//! swapped back in without touching test code:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive`, `boxed`;
//! * strategies for numeric ranges, tuples (arity ≤ 6), [`strategy::Just`],
//!   [`collection::vec`], [`option::of`], and [`prop_oneof!`] unions;
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`];
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case reports its case index and the
//!   deterministic per-test seed instead of a minimized input (generated
//!   values carry no `Debug` bound, so inputs are replayed by re-running
//!   the seeded sequence rather than printed);
//! * cases are generated from a seed derived from the test name, so
//!   failures reproduce exactly across runs (upstream defaults to a
//!   fresh entropy seed per run).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Re-exports for `use proptest::prelude::*`, mirroring upstream.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module alias (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::deterministic_rng(stringify!($name));
                let __strat = ($($strat,)+);
                for __case in 0..__config.cases {
                    let ($($pat,)+) = $crate::strategy::Strategy::generate(&__strat, &mut __rng);
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __result {
                        ::core::panic!(
                            "proptest {} failed at case {}/{} (rng seed {:#x}): {}",
                            stringify!($name), __case + 1, __config.cases,
                            $crate::test_runner::deterministic_seed(stringify!($name)), e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a formatted message unless the condition
/// holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`",
                    stringify!($left),
                    stringify!($right)
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Fails the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`",
                    stringify!($left),
                    stringify!($right)
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, $($fmt)*);
            }
        }
    };
}

/// A uniform choice between strategies with the same value type:
/// `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(
            ::std::vec![$($crate::strategy::Strategy::boxed($strat)),+],
        )
    };
}
