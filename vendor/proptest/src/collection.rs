//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// An inclusive length range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// A strategy producing `Vec`s of values from an element strategy.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
