//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of criterion's API the qarith benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with the same shapes, so the real crate
//! can be swapped back in without touching bench code.
//!
//! Measurement is intentionally simple: each benchmark is warmed up
//! briefly, then timed over `sample_size` samples whose iteration counts
//! are sized to a per-sample time budget; the mean, minimum, and maximum
//! per-iteration times are printed. There are no HTML reports, no
//! statistical regression analysis, and no baseline comparisons.
//!
//! `cargo bench` filter arguments are honored as substring matches on
//! the full benchmark id, so `cargo bench -p qarith-bench fig1 -- 0.1`
//! style invocations behave as expected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::hint;
use std::time::{Duration, Instant};

/// An opaque barrier against compiler optimization, re-exported from
/// `std::hint` (criterion's own `black_box` predates the std version).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a name and a parameter, rendered `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: Some(name.into()), parameter: Some(parameter.to_string()) }
    }

    /// An id carrying only a parameter (the group name provides context).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: None, parameter: Some(parameter.to_string()) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: Some(name.to_owned()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name: Some(name), parameter: None }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name, &self.parameter) {
            (Some(n), Some(p)) => write!(f, "{n}/{p}"),
            (Some(n), None) => f.write_str(n),
            (None, Some(p)) => f.write_str(p),
            (None, None) => f.write_str("?"),
        }
    }
}

/// The benchmark driver handed to `criterion_group!` target functions.
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes filters as plain arguments.
        // Flags are not filters: cargo itself injects `--bench`, and
        // upstream criterion accepts a family of value-carrying options
        // this subset does not implement. Skipping a value flag's value
        // silently would turn it into a filter that deselects every
        // benchmark, so unimplemented value flags are a hard error.
        const BARE_FLAGS: &[&str] = &["--bench", "--test", "--noplot", "--quiet", "--verbose"];
        const VALUE_FLAGS: &[&str] = &[
            "--save-baseline",
            "--baseline",
            "--load-baseline",
            "--sample-size",
            "--measurement-time",
            "--warm-up-time",
            "--significance-level",
            "--noise-threshold",
            "--color",
            "--output-format",
            "--profile-time",
        ];
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            if VALUE_FLAGS.contains(&arg.as_str()) {
                eprintln!("error: `{arg}` is not supported by the vendored criterion subset");
                std::process::exit(2);
            } else if arg.starts_with('-') {
                if !BARE_FLAGS.contains(&arg.as_str()) {
                    eprintln!("warning: ignoring unrecognized flag `{arg}`");
                }
            } else {
                filters.push(arg);
            }
        }
        Criterion { filters }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.to_string());
        group.run(String::new(), f);
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_id.contains(f.as_str()))
    }
}

/// A group of benchmarks sharing a name and sampling configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the time budget the samples together aim for.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a closure under an id within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into().to_string(), f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}

    fn run<F>(&mut self, id: String, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full_id =
            if id.is_empty() { self.name.clone() } else { format!("{}/{}", self.name, id) };
        if !self.criterion.matches(&full_id) {
            return;
        }

        // Warm-up: also calibrates how many iterations fit one sample.
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            warm_iters += bencher.iters;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = (per_sample / per_iter.max(1e-9)).ceil().max(1.0) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(f64::total_cmp);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{full_id:<60} time: [{} {} {}]",
            format_time(samples[0]),
            format_time(mean),
            format_time(*samples.last().expect("sample_size >= 2")),
        );
    }
}

/// Times the closure handed to `Bencher::iter`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine the harness-chosen number of times, timing it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.2} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
