//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seedable generator: xoshiro256++ with
/// SplitMix64 state expansion (Blackman & Vigna).
///
/// Not the ChaCha12 generator of upstream `rand` 0.8 — streams differ —
/// but deterministic per seed and statistically strong for Monte-Carlo
/// use.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
