//! Uniform sampling from range expressions (`Rng::gen_range`).

use std::ops::{Range, RangeInclusive};

use crate::distributions::{Distribution, Standard};
use crate::RngCore;

/// A range that can produce uniformly distributed values of type `T`.
/// Mirrors `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u128` below `span` (rejection sampling, no modulo bias).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in a u128.
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide <= zone {
            return wide % span;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                if span == 0 {
                    // Full-domain i128/u128 range: every bit pattern is valid.
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    return wide as $t;
                }
                lo.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_range!(f32, f64);
