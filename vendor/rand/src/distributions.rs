//! The `Standard` distribution for `Rng::gen`.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The canonical distribution per type: `[0,1)` for floats, uniform over
/// the full domain for integers, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                let hi = rng.next_u64() as u128;
                let wide = (hi << 64) | rng.next_u64() as u128;
                wide as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);
