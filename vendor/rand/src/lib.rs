//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this vendored crate implements exactly the subset of the `rand`
//! 0.8 API that the qarith workspace uses, with the same names and
//! signatures so that swapping in the real crate is a one-line
//! `Cargo.toml` change:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` (range syntax, both
//!   half-open and inclusive) and `gen_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded via
//!   SplitMix64 (the real `StdRng` is ChaCha12; both are deterministic
//!   for a fixed seed, which is all the workspace relies on);
//! * [`distributions::Standard`] / [`distributions::Distribution`] for
//!   `f64`/`f32` in `[0,1)`, integers, and `bool`.
//!
//! The statistical quality of xoshiro256++ comfortably exceeds what the
//! Monte-Carlo estimators here need; streams differ from upstream
//! `rand`, so seeded expectations must not be ported verbatim between
//! the two implementations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
mod uniform;

pub use uniform::SampleRange;

use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing randomness methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: f64 = StdRng::seed_from_u64(42).gen();
        assert_ne!(first.to_bits(), c.gen::<f64>().to_bits());
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(-3i128..=3);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.5f64..4.0);
            assert!((-2.5..4.0).contains(&x));
            let y = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&y));
        }
    }
}
