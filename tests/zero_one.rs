//! V3: the zero-one law of §2 — for generic queries μ ∈ {0, 1}, and
//! μ = 1 exactly for the naive answers. We check it two ways: through the
//! dedicated shortcut, and *emergently* through the full
//! grounding-and-measure pipeline (whose ground formulas for generic
//! queries only contain equality atoms, which are measure-zero unless
//! identically true).

use qarith::core::{CertaintyEngine, MeasureOptions, Method, MethodChoice};
use qarith::engine::{ground, naive};
use qarith::prelude::*;

fn generic_db() -> Database {
    let mut db = Database::new();
    let r = RelationSchema::new("R", vec![Column::base("a"), Column::num("x")]).unwrap();
    let mut rel = Relation::empty(r);
    rel.insert_values(vec![Value::int(1), Value::NumNull(NumNullId(0))]).unwrap();
    rel.insert_values(vec![Value::int(2), Value::num(5)]).unwrap();
    rel.insert_values(vec![Value::BaseNull(BaseNullId(0)), Value::num(7)]).unwrap();
    db.add_relation(rel).unwrap();
    let s = RelationSchema::new("S", vec![Column::num("x")]).unwrap();
    let mut rel = Relation::empty(s);
    rel.insert_values(vec![Value::NumNull(NumNullId(0))]).unwrap();
    rel.insert_values(vec![Value::num(9)]).unwrap();
    db.add_relation(rel).unwrap();
    db
}

/// q(a) = ∃x R(a, x) ∧ S(x): a generic join on a numerical column.
fn join_query(db: &Database) -> Query {
    Query::new(
        vec![TypedVar::base("a")],
        Formula::exists(
            vec![TypedVar::num("x")],
            Formula::and(vec![
                Formula::rel("R", vec![Arg::Base(BaseTerm::var("a")), Arg::Num(NumTerm::var("x"))]),
                Formula::rel("S", vec![Arg::Num(NumTerm::var("x"))]),
            ]),
        ),
        &db.catalog(),
    )
    .unwrap()
}

#[test]
fn zero_one_shortcut_matches_naive_evaluation() {
    let db = generic_db();
    let q = join_query(&db);
    assert!(q.fragment().is_generic());

    let engine = CertaintyEngine::new(MeasureOptions::default());
    let naive_answers = naive::evaluate(&q, &db).unwrap();
    // Only tuple (1, ⊤0) joins S (via the shared null ⊤0).
    assert_eq!(naive_answers, vec![Tuple::new(vec![Value::int(1)])]);

    // Every candidate over the base active domain gets a 0/1 measure
    // matching naive membership.
    for cand in [
        Tuple::new(vec![Value::int(1)]),
        Tuple::new(vec![Value::int(2)]),
        Tuple::new(vec![Value::BaseNull(BaseNullId(0))]),
    ] {
        let est = engine.measure(&q, &db, &cand).unwrap();
        assert_eq!(est.method, Method::ZeroOne);
        let expected = naive_answers.contains(&cand);
        assert_eq!(est.is_certain(), expected, "candidate {cand}");
        assert!(est.value == 0.0 || est.value == 1.0, "zero-one law violated");
    }
}

#[test]
fn zero_one_emerges_from_the_general_pipeline() {
    // Bypass the shortcut: ground + measure the generic query the long
    // way. Equality atoms between distinct nulls/constants are
    // measure-zero, so μ must land on exactly 0 or 1 regardless.
    let db = generic_db();
    let q = join_query(&db);
    let engine = CertaintyEngine::new(MeasureOptions {
        method: MethodChoice::ExactOnly,
        ..MeasureOptions::default()
    });
    for (cand, expected) in
        [(Tuple::new(vec![Value::int(1)]), 1.0), (Tuple::new(vec![Value::int(2)]), 0.0)]
    {
        let phi = ground::ground(&q, &db, &cand).unwrap();
        let est = engine.nu(&phi).unwrap();
        assert_eq!(est.value, expected, "candidate {cand} via grounding");
    }
}

#[test]
fn negation_retains_zero_one_for_generic_queries() {
    // q(a) = ∃x R(a,x) ∧ ¬S(x): still generic (no arithmetic).
    let db = generic_db();
    let q = Query::new(
        vec![TypedVar::base("a")],
        Formula::exists(
            vec![TypedVar::num("x")],
            Formula::and(vec![
                Formula::rel("R", vec![Arg::Base(BaseTerm::var("a")), Arg::Num(NumTerm::var("x"))]),
                Formula::not(Formula::rel("S", vec![Arg::Num(NumTerm::var("x"))])),
            ]),
        ),
        &db.catalog(),
    )
    .unwrap();
    assert!(q.fragment().is_generic());
    let engine = CertaintyEngine::new(MeasureOptions::default());
    // R(2,5): 5 ∉ S naively (S = {⊤0, 9}) ⇒ answer. R(1,⊤0): ⊤0 ∈ S ⇒ not.
    let est = engine.measure(&q, &db, &Tuple::new(vec![Value::int(2)])).unwrap();
    assert!(est.is_certain());
    let est = engine.measure(&q, &db, &Tuple::new(vec![Value::int(1)])).unwrap();
    assert_eq!(est.value, 0.0);
}
