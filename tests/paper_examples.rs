//! V1/V2: the analytically-solved examples embedded in the paper's text,
//! asserted end to end.

use qarith::constraints::{Atom, ConstraintOp, Polynomial, QfFormula, Var};
use qarith::core::exact::arcs2d;
use qarith::core::fpras;
use qarith::core::{afpras, AfprasOptions, CertaintyEngine, FprasOptions, MeasureOptions};
use qarith::engine::ground;
use qarith::prelude::*;

fn z(i: u32) -> Polynomial {
    Polynomial::var(Var(i))
}

fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
    QfFormula::atom(Atom::new(p, op))
}

const PI: f64 = std::f64::consts::PI;

/// V1: the intro example's constraint (1) has measure
/// (π/2 − arctan(10/7))/2π ≈ 0.097, i.e. ≈ 0.388 of the positive
/// quadrant.
#[test]
fn v1_intro_example_headline_numbers() {
    let seven_tenths = Polynomial::constant(Rational::new(7, 10));
    let eq1 = QfFormula::and([
        atom(z(1), ConstraintOp::Ge),
        atom(z(0) - Polynomial::constant(Rational::from_int(8)), ConstraintOp::Ge),
        atom(seven_tenths * z(1) - z(0), ConstraintOp::Ge),
    ]);
    let expected = (PI / 2.0 - (10.0f64 / 7.0).atan()) / (2.0 * PI);

    // Exact arc evaluator.
    let nu = arcs2d::exact_arc_measure(&eq1);
    assert!((nu - expected).abs() < 1e-12);
    assert!((nu - 0.097).abs() < 5e-4, "paper quotes ≈ 0.097, got {nu:.4}");
    assert!((4.0 * nu - 0.388).abs() < 2e-3, "paper quotes ≈ 0.388 of the quadrant");

    // The Auto pipeline picks the same evaluator.
    let engine = CertaintyEngine::new(MeasureOptions::default());
    let auto = engine.nu(&eq1).unwrap();
    assert!((auto.value - expected).abs() < 1e-12);

    // The Theorem 8.1 sampler agrees within ε.
    let sampled =
        afpras::estimate_nu(&eq1, &AfprasOptions { epsilon: 0.01, ..AfprasOptions::default() })
            .unwrap();
    assert!((sampled.estimate - expected).abs() < 0.02);

    // The Theorem 7.1 FPRAS agrees too (the constraint is CQ(+,<)-shaped).
    let f = fpras::estimate_nu(&eq1, &FprasOptions { epsilon: 0.05, ..FprasOptions::default() })
        .unwrap();
    assert!((f.estimate - expected).abs() < 0.02, "fpras {}", f.estimate);
}

/// V2: Proposition 6.1 — the wedge measure is (arctan α + π/2)/2π,
/// rational exactly for α ∈ {0, ±1}.
#[test]
fn v2_proposition_6_1_values() {
    let engine = CertaintyEngine::new(MeasureOptions::default());
    let cases: [(&str, f64); 7] = [
        ("-2", -2.0),
        ("-1", -1.0),
        ("-0.5", -0.5),
        ("0", 0.0),
        ("0.5", 0.5),
        ("1", 1.0),
        ("2", 2.0),
    ];
    for (alpha_text, alpha) in cases {
        let a = Polynomial::constant(Rational::parse_decimal(alpha_text).unwrap());
        let phi =
            QfFormula::and([atom(z(0), ConstraintOp::Ge), atom(z(1) - a * z(0), ConstraintOp::Le)]);
        let expected = (alpha.atan() + PI / 2.0) / (2.0 * PI);
        let est = engine.nu(&phi).unwrap();
        assert!(
            (est.value - expected).abs() < 1e-9,
            "α = {alpha}: got {}, want {expected}",
            est.value
        );
    }
    // The rational cases have dyadic values (arctan(±1) = ±π/4):
    // α = 0 → 1/4, α = 1 → 3/8, α = −1 → 1/8.
    for (alpha_text, num, den) in [("0", 1i64, 4i64), ("1", 3, 8), ("-1", 1, 8)] {
        let a = Polynomial::constant(Rational::parse_decimal(alpha_text).unwrap());
        let phi =
            QfFormula::and([atom(z(0), ConstraintOp::Ge), atom(z(1) - a * z(0), ConstraintOp::Le)]);
        let est = engine.nu(&phi).unwrap();
        assert!(
            (est.value - num as f64 / den as f64).abs() < 1e-12,
            "α = {alpha_text} should give {num}/{den}"
        );
    }
}

/// V1, full-query version: grounding the intro query (as written, with
/// r·d ≤ p) through Proposition 5.3 gives arctan(10/7)/2π.
#[test]
fn v1_intro_query_grounded_measure() {
    // Build the intro database.
    let mut db = Database::new();
    let products = RelationSchema::new(
        "Products",
        vec![Column::base("id"), Column::base("seg"), Column::num("rrp"), Column::num("dis")],
    )
    .unwrap();
    let mut p = Relation::empty(products);
    p.insert_values(vec![
        Value::str("id1"),
        Value::str("s"),
        Value::num(10),
        Value::decimal("0.8"),
    ])
    .unwrap();
    p.insert_values(vec![
        Value::str("id2"),
        Value::str("s"),
        Value::NumNull(NumNullId(1)),
        Value::decimal("0.7"),
    ])
    .unwrap();
    db.add_relation(p).unwrap();
    let competition = RelationSchema::new(
        "Competition",
        vec![Column::base("id"), Column::base("seg"), Column::num("p")],
    )
    .unwrap();
    let mut c = Relation::empty(competition);
    c.insert_values(vec![Value::str("c"), Value::str("s"), Value::NumNull(NumNullId(0))]).unwrap();
    db.add_relation(c).unwrap();
    let excluded =
        RelationSchema::new("Excluded", vec![Column::base("id"), Column::base("seg")]).unwrap();
    let mut e = Relation::empty(excluded);
    e.insert_values(vec![Value::BaseNull(BaseNullId(0)), Value::str("s")]).unwrap();
    db.add_relation(e).unwrap();

    let body = Formula::forall(
        vec![
            TypedVar::base("i"),
            TypedVar::num("r"),
            TypedVar::num("d"),
            TypedVar::base("ip"),
            TypedVar::num("p"),
        ],
        Formula::implies(
            Formula::and(vec![
                Formula::rel(
                    "Products",
                    vec![
                        Arg::Base(BaseTerm::var("i")),
                        Arg::Base(BaseTerm::var("s")),
                        Arg::Num(NumTerm::var("r")),
                        Arg::Num(NumTerm::var("d")),
                    ],
                ),
                Formula::not(Formula::rel(
                    "Excluded",
                    vec![Arg::Base(BaseTerm::var("i")), Arg::Base(BaseTerm::var("s"))],
                )),
                Formula::rel(
                    "Competition",
                    vec![
                        Arg::Base(BaseTerm::var("ip")),
                        Arg::Base(BaseTerm::var("s")),
                        Arg::Num(NumTerm::var("p")),
                    ],
                ),
            ]),
            Formula::and(vec![
                Formula::cmp(
                    NumTerm::var("r").mul(NumTerm::var("d")),
                    CompareOp::Le,
                    NumTerm::var("p"),
                ),
                Formula::cmp(NumTerm::var("r"), CompareOp::Ge, NumTerm::int(0)),
                Formula::cmp(NumTerm::var("d"), CompareOp::Ge, NumTerm::int(0)),
                Formula::cmp(NumTerm::var("p"), CompareOp::Ge, NumTerm::int(0)),
            ]),
        ),
    );
    let q = Query::new(vec![TypedVar::base("s")], body, &db.catalog()).unwrap();

    let phi = ground::ground(&q, &db, &Tuple::new(vec![Value::str("s")])).unwrap();
    let engine = CertaintyEngine::new(MeasureOptions::default());
    let est = engine.nu(&phi).unwrap();

    // Region: z0 ≥ 8 ∧ z1 ≥ 0 ∧ 0.7·z1 ≤ z0 (z0 = competition price,
    // z1 = id2's rrp); measure arctan(10/7)/2π.
    let expected = (10.0f64 / 7.0).atan() / (2.0 * PI);
    assert!(
        (est.value - expected).abs() < 1e-9,
        "grounded intro query: got {}, want {expected}",
        est.value
    );
}
