//! End-to-end integration: the §9 pipeline — SQL text → parse/lower →
//! CQ execution over a generated sales database → ground formulas →
//! certainty estimates.

use qarith::prelude::*;
use qarith_core::AfprasOptions;
use qarith_datagen::sales::{paper_queries, sales_catalog, sales_database, SalesScale};
use qarith_engine::cq;
use qarith_sql::compile;

#[test]
fn all_three_paper_queries_run_end_to_end() {
    let scale = SalesScale::small();
    let db = sales_database(&scale, 2020);
    let catalog = sales_catalog();

    let mut total_certain = 0usize;
    let mut total_uncertain = 0usize;
    for (name, sql) in paper_queries() {
        let lowered = compile(sql, &catalog).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(lowered.limit, Some(25), "{name} has LIMIT 25");
        assert!(lowered.query.fragment().conjunctive, "{name} must be a CQ");

        let opts = CqOptions::with_limit(lowered.limit.unwrap());
        let candidates =
            cq::execute(&lowered.query, &db, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!candidates.is_empty(), "{name} should return candidates");
        assert!(candidates.len() <= 25);

        let engine = CertaintyEngine::new(MeasureOptions {
            afpras: AfprasOptions::with_epsilon(0.05),
            ..MeasureOptions::default()
        });
        let answers = engine.measure_candidates(candidates).unwrap();
        for a in &answers {
            assert!(
                (0.0..=1.0).contains(&a.certainty.value),
                "{name}: μ out of range: {}",
                a.certainty.value
            );
        }
        let certain = answers.iter().filter(|a| a.certainty.is_certain()).count();
        total_certain += certain;
        total_uncertain += answers.len() - certain;
    }
    // Across the workload both kinds of answers must occur: null-free
    // derivations give certainty, market nulls give genuine uncertainty.
    assert!(total_certain > 0, "expected certain answers somewhere in the workload");
    assert!(total_uncertain > 0, "expected uncertain answers somewhere in the workload");
}

#[test]
fn uncertain_answers_get_strict_fractional_measures() {
    // Raise the null rate so the LIMIT window contains null-dependent
    // candidates.
    let scale = SalesScale { null_rate: 0.5, ..SalesScale::tiny() };
    let db = sales_database(&scale, 7);
    let catalog = sales_catalog();

    let lowered = compile(
        "SELECT P.seg FROM Products P, Market M \
         WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis",
        &catalog,
    )
    .unwrap();
    let candidates = cq::execute(&lowered.query, &db, &CqOptions::default()).unwrap();
    let engine = CertaintyEngine::new(MeasureOptions {
        afpras: AfprasOptions::with_epsilon(0.03),
        ..MeasureOptions::default()
    });
    let answers = engine.measure_candidates(candidates).unwrap();
    let fractional: Vec<&AnswerWithCertainty> =
        answers.iter().filter(|a| a.certainty.value > 0.02 && a.certainty.value < 0.98).collect();
    assert!(!fractional.is_empty(), "with 50% nulls some candidates must be genuinely uncertain");
}

#[test]
fn candidate_measures_are_consistent_between_methods() {
    // For candidates with ≤ 2 nulls in their formula, Auto uses exact
    // evaluators; AFPRAS must agree within its ε.
    let scale = SalesScale { null_rate: 0.4, ..SalesScale::tiny() };
    let db = sales_database(&scale, 99);
    let catalog = sales_catalog();
    let lowered = compile(
        "SELECT P.seg FROM Products P, Market M \
         WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis",
        &catalog,
    )
    .unwrap();
    let candidates = cq::execute(&lowered.query, &db, &CqOptions::default()).unwrap();

    let auto = CertaintyEngine::new(MeasureOptions::default());
    let sampled = CertaintyEngine::new(MeasureOptions {
        method: MethodChoice::Afpras,
        afpras: AfprasOptions::with_epsilon(0.02),
        ..MeasureOptions::default()
    });
    let mut compared = 0;
    for cand in candidates {
        if cand.certain {
            continue;
        }
        let a = auto.nu(&cand.formula).unwrap();
        let b = sampled.nu(&cand.formula).unwrap();
        assert!(
            (a.value - b.value).abs() < 0.08,
            "methods disagree: {} vs {} on {}",
            a.value,
            b.value,
            cand.formula
        );
        compared += 1;
    }
    assert!(compared > 0, "no uncertain candidates to compare");
}
