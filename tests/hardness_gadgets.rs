//! V4/V5: executable validation of the §6 lower-bound constructions.
//!
//! Both proofs hinge on an identity of the form `μ(q, D_ψ) = #ψ / 2ⁿ`.
//! We build the gadgets for random formulas, compute μ exactly (order
//! fragment ⇒ exact rational), and compare against brute-force model
//! counting.

use qarith::core::reductions::{encode_3cnf, encode_3dnf, random_instance, Literal, ThreeSat};
use qarith::core::{CertaintyEngine, MeasureOptions};
use qarith::engine::cq::{self, CqOptions};
use qarith::engine::ground;
use qarith::prelude::*;

fn lit(var: usize, positive: bool) -> Literal {
    Literal { var, positive }
}

#[test]
fn v4_theorem_6_3_cnf_identity_random_instances() {
    let engine = CertaintyEngine::new(MeasureOptions::default());
    for seed in 0..8u64 {
        let vars = 4 + (seed % 3) as usize;
        let psi = random_instance(vars, vars + 2, seed);
        let count = psi.count_cnf();
        let (q, db) = encode_3cnf(&psi);
        assert!(!q.fragment().conjunctive, "Thm 6.3 query is FO (has ∀ and ∨)");
        let phi = ground::ground(&q, &db, &Tuple::new(vec![])).unwrap();
        let est = engine.nu(&phi).unwrap();
        assert_eq!(
            est.exact.expect("order fragment gives exact rationals"),
            Rational::new(count as i128, 1i128 << vars),
            "seed {seed}: μ must equal #ψ/2ⁿ"
        );
    }
}

#[test]
fn v5_proposition_6_2_dnf_identity_random_instances() {
    // Generic active-domain grounding is exponential in the quantifier
    // count (7 quantifiers here), so keep these instances small; larger
    // instances go through the polynomial CQ executor below.
    let engine = CertaintyEngine::new(MeasureOptions::default());
    for seed in 100..104u64 {
        let vars = 4;
        let psi = random_instance(vars, 3, seed);
        let count = psi.count_dnf();
        let (q, db) = encode_3dnf(&psi);
        assert!(q.fragment().conjunctive, "Prop 6.2 query must be a CQ");
        let phi = ground::ground(&q, &db, &Tuple::new(vec![])).unwrap();
        let est = engine.nu(&phi).unwrap();
        assert_eq!(
            est.exact.expect("order fragment gives exact rationals"),
            Rational::new(count as i128, 1i128 << vars),
            "seed {seed}: μ must equal #ψ/2ᵏ"
        );
    }
}

#[test]
fn v5_larger_instances_via_cq_executor() {
    let engine = CertaintyEngine::new(MeasureOptions::default());
    for seed in 200..206u64 {
        let vars = 5 + (seed % 2) as usize;
        let psi = random_instance(vars, 6, seed);
        let count = psi.count_dnf();
        let (q, db) = encode_3dnf(&psi);
        let answers = cq::execute(&q, &db, &CqOptions::default()).unwrap();
        let measured = match answers.first() {
            None => Rational::ZERO, // no satisfying derivation at all
            Some(ans) => engine.nu(&ans.formula).unwrap().exact.unwrap(),
        };
        assert_eq!(
            measured,
            Rational::new(count as i128, 1i128 << vars),
            "seed {seed}: μ must equal #ψ/2ᵏ"
        );
    }
}

#[test]
fn dnf_gadget_via_cq_executor() {
    // The conjunctive gadget also runs through the join executor, whose
    // per-candidate formula must give the same measure.
    let psi = ThreeSat {
        vars: 4,
        triples: vec![
            [lit(0, true), lit(1, true), lit(2, true)],
            [lit(1, false), lit(2, false), lit(3, true)],
        ],
    };
    let (q, db) = encode_3dnf(&psi);
    let answers = cq::execute(&q, &db, &CqOptions::default()).unwrap();
    assert_eq!(answers.len(), 1, "Boolean query: one (empty-tuple) candidate");
    let engine = CertaintyEngine::new(MeasureOptions::default());
    let est = engine.nu(&answers[0].formula).unwrap();
    assert_eq!(est.exact.unwrap(), Rational::new(psi.count_dnf() as i128, 16));
}

#[test]
fn unsatisfiable_and_valid_formulas_hit_the_measure_endpoints() {
    // (x ∧ ¬x ∧ y)-style DNF term: unsatisfiable ⇒ μ = 0 …
    let contradiction =
        ThreeSat { vars: 3, triples: vec![[lit(0, true), lit(0, false), lit(1, true)]] };
    // An inconsistent term is satisfied by no assignment.
    assert_eq!(contradiction.count_dnf(), 0);
    let (q, db) = encode_3dnf(&contradiction);
    let phi = ground::ground(&q, &db, &Tuple::new(vec![])).unwrap();
    let engine = CertaintyEngine::new(MeasureOptions::default());
    assert_eq!(engine.nu(&phi).unwrap().exact.unwrap(), Rational::ZERO);

    // … and a tautologous CNF clause set ⇒ μ = 1.
    let tautology =
        ThreeSat { vars: 3, triples: vec![[lit(0, true), lit(0, false), lit(1, true)]] };
    assert_eq!(tautology.count_cnf(), 8);
    let (q, db) = encode_3cnf(&tautology);
    let phi = ground::ground(&q, &db, &Tuple::new(vec![])).unwrap();
    assert_eq!(engine.nu(&phi).unwrap().exact.unwrap(), Rational::ONE);
}
