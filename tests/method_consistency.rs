//! Cross-method consistency of the measure, and exactness of the batch
//! engine.
//!
//! Two families of properties lock the batch measurement subsystem in:
//!
//! 1. **Method agreement** — on proptest-generated small CQ(+,<)-shaped
//!    formulas (Boolean combinations of linear atoms), the exact
//!    order-fragment evaluator, the multiplicative FPRAS (Thm 7.1), and
//!    the additive AFPRAS (Thm 8.1) agree within ε plus slack.
//!
//! 2. **Batch exactness** — for fixed seeds, the batched/deduplicated/
//!    cached path produces *bit-identical* estimates to the plain
//!    sequential per-candidate loop, for every method choice; and a
//!    warm ν-cache replays the identical bits.

use proptest::prelude::*;

use qarith::constraints::{Atom, ConstraintOp, Polynomial, QfFormula, Var};
use qarith::core::afpras::{self, AfprasOptions};
use qarith::core::exact::order;
use qarith::core::fpras::{self, FprasOptions};
use qarith::engine::cq::CandidateAnswer;
use qarith::prelude::*;

// ---------------------------------------------------------------------
// Strategies: CQ(+,<)-shaped (linear) formulas
// ---------------------------------------------------------------------

fn order_op() -> impl Strategy<Value = ConstraintOp> {
    prop_oneof![
        Just(ConstraintOp::Lt),
        Just(ConstraintOp::Le),
        Just(ConstraintOp::Gt),
        Just(ConstraintOp::Ge),
    ]
}

/// An order atom `±(z_i − z_j) + c ⋈ 0` or `±z_i + c ⋈ 0` — linear, so
/// it is simultaneously in reach of the exact order evaluator, the
/// FPRAS, and the AFPRAS.
fn order_atom(max_vars: u32) -> impl Strategy<Value = QfFormula> {
    (0..max_vars, 0..max_vars, -3i64..=3, order_op()).prop_map(|(i, j, c, o)| {
        let p = if i == j {
            Polynomial::var(Var(i))
        } else {
            Polynomial::var(Var(i)) - Polynomial::var(Var(j))
        } + Polynomial::constant(Rational::from_int(c));
        QfFormula::atom(Atom::new(p, o))
    })
}

fn order_formula(max_vars: u32) -> impl Strategy<Value = QfFormula> {
    order_atom(max_vars).prop_recursive(2, 10, 2, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(QfFormula::and),
            prop::collection::vec(inner.clone(), 1..3).prop_map(QfFormula::or),
            inner.prop_map(QfFormula::negated),
        ]
    })
}

/// A general linear atom (arbitrary rational coefficients) — CQ(+,<)
/// residual shape.
fn linear_atom(max_vars: u32) -> impl Strategy<Value = QfFormula> {
    (prop::collection::vec((-4i128..=4, 0..max_vars), 1..3), -20i128..=20, order_op()).prop_map(
        |(coeffs, c, o)| {
            let mut p = Polynomial::constant(Rational::new(c, 2));
            for (k, v) in coeffs {
                p = p + Polynomial::constant(Rational::new(k, 1)) * Polynomial::var(Var(v));
            }
            QfFormula::atom(Atom::new(p, o))
        },
    )
}

fn linear_formula(max_vars: u32) -> impl Strategy<Value = QfFormula> {
    linear_atom(max_vars).prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(QfFormula::and),
            prop::collection::vec(inner.clone(), 1..4).prop_map(QfFormula::or),
        ]
    })
}

fn candidates_from(formulas: Vec<QfFormula>) -> Vec<CandidateAnswer> {
    formulas
        .into_iter()
        .enumerate()
        .map(|(i, formula)| CandidateAnswer {
            tuple: Tuple::new(vec![Value::int(i as i64)]),
            formula: std::sync::Arc::new(formula),
            derivations: 1,
            certain: false,
            truncated: false,
        })
        .collect()
}

/// The μ-relevant identity of an estimate (`cached` is provenance and is
/// deliberately excluded).
fn bits(est: &CertaintyEstimate) -> (u64, Option<Rational>, usize, usize) {
    (est.value.to_bits(), est.exact, est.samples, est.dimension)
}

// ---------------------------------------------------------------------
// 1. Method agreement within ε + tolerance
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exact, FPRAS, and AFPRAS agree on order formulas (where the exact
    /// evaluator provides ground truth). AFPRAS runs at ε = 0.05 with
    /// δ = 0.01; FPRAS at ε = 0.08 with heuristic volume budgets: 2ε
    /// slack keeps the suite stable across seeds.
    #[test]
    fn exact_fpras_afpras_agree_on_order_formulas(f in order_formula(3), seed in 0u64..500) {
        let exact = order::exact_order_measure(&f).unwrap().to_f64();

        let a_opts = AfprasOptions { epsilon: 0.05, delta: 0.01, seed, ..AfprasOptions::default() };
        let additive = afpras::estimate_nu(&f, &a_opts).unwrap();
        prop_assert!(
            (additive.estimate - exact).abs() < 0.05 + 0.05,
            "AFPRAS {} vs exact {exact} on {f}", additive.estimate
        );

        let m_opts = FprasOptions { epsilon: 0.08, seed, ..FprasOptions::default() };
        let multiplicative = fpras::estimate_nu(&f, &m_opts).unwrap();
        prop_assert!(
            (multiplicative.estimate - exact).abs() < 0.08 + 0.08,
            "FPRAS {} vs exact {exact} on {f}", multiplicative.estimate
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On general linear formulas (no exact ground truth), the two
    /// approximation schemes must still agree with each other.
    #[test]
    fn fpras_and_afpras_agree_on_linear_formulas(f in linear_formula(3), seed in 0u64..500) {
        let a_opts = AfprasOptions { epsilon: 0.03, delta: 0.01, seed, ..AfprasOptions::default() };
        let additive = afpras::estimate_nu(&f, &a_opts).unwrap();
        let m_opts = FprasOptions { epsilon: 0.08, seed, ..FprasOptions::default() };
        let multiplicative = fpras::estimate_nu(&f, &m_opts).unwrap();
        prop_assert!(
            (additive.estimate - multiplicative.estimate).abs() < 0.03 + 0.08 + 0.05,
            "AFPRAS {} vs FPRAS {} on {f}", additive.estimate, multiplicative.estimate
        );
    }
}

// ---------------------------------------------------------------------
// 2. Batch/cached results are bit-identical to sequential uncached
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every method choice, the batched path (canonical dedup, 4
    /// worker threads, ν-cache) reproduces the sequential uncached loop
    /// bit for bit, and a second (fully cached) pass replays the same
    /// bits again.
    #[test]
    fn batch_is_bit_identical_to_sequential(
        formulas in prop::collection::vec(linear_formula(3), 1..6),
        duplicate in prop::collection::vec(0usize..6, 0..4),
        method in prop_oneof![
            Just(MethodChoice::Auto),
            Just(MethodChoice::Afpras),
            Just(MethodChoice::Fpras),
        ],
    ) {
        // Splice in literal duplicates (the executor produces plenty).
        let mut all = formulas.clone();
        for &d in &duplicate {
            all.push(formulas[d % formulas.len()].clone());
        }
        let candidates = candidates_from(all);

        let options = MeasureOptions { method, ..MeasureOptions::default() };
        let sequential = CertaintyEngine::new(MeasureOptions {
            batch: BatchOptions { threads: 1, dedup: false },
            ..options.clone()
        });
        let cache = std::sync::Arc::new(NuCache::new());
        let batched = CertaintyEngine::new(MeasureOptions {
            batch: BatchOptions { threads: 4, dedup: true },
            ..options
        })
        .with_cache(cache.clone());

        let s = sequential.measure_candidates(candidates.clone()).unwrap();
        let b = batched.measure_batch(candidates.clone()).unwrap();
        prop_assert_eq!(s.len(), b.answers.len());
        for (x, y) in s.iter().zip(&b.answers) {
            prop_assert_eq!(bits(&x.certainty), bits(&y.certainty), "{:?} on {}", method, x.formula);
        }

        // Second pass: everything served from the warm cache, same bits.
        let warm = batched.measure_batch(candidates).unwrap();
        prop_assert_eq!(warm.stats.measured, 0, "warm pass measures nothing");
        for (x, y) in s.iter().zip(&warm.answers) {
            prop_assert_eq!(bits(&x.certainty), bits(&y.certainty));
            prop_assert!(y.certainty.cached);
        }
    }

    /// Renaming the nulls of a formula never changes its measure — the
    /// canonicalization invariant, method by method, checked through the
    /// public engine (order-preserving renamings are bit-exact).
    #[test]
    fn monotone_null_renaming_is_bit_exact(
        f in linear_formula(3),
        offset in 1u32..40,
        method in prop_oneof![
            Just(MethodChoice::Auto),
            Just(MethodChoice::Afpras),
            Just(MethodChoice::Fpras),
        ],
    ) {
        let renamed = {
            fn walk(f: &QfFormula, offset: u32) -> QfFormula {
                match f {
                    QfFormula::True => QfFormula::True,
                    QfFormula::False => QfFormula::False,
                    QfFormula::Atom(a) => QfFormula::atom(Atom::new(
                        a.poly().map_vars(|v| Var(v.0 * 2 + offset)),
                        a.op(),
                    )),
                    QfFormula::Not(inner) => walk(inner, offset).negated(),
                    QfFormula::And(ps) => QfFormula::and(ps.iter().map(|p| walk(p, offset))),
                    QfFormula::Or(ps) => QfFormula::or(ps.iter().map(|p| walk(p, offset))),
                }
            }
            walk(&f, offset)
        };
        let engine = CertaintyEngine::new(MeasureOptions { method, ..MeasureOptions::default() });
        let a = engine.nu(&f).unwrap();
        let b = engine.nu(&renamed).unwrap();
        prop_assert_eq!(bits(&a), bits(&b), "{:?} on {}", method, f);
    }
}

// ---------------------------------------------------------------------
// Deterministic spot checks
// ---------------------------------------------------------------------

#[test]
fn batch_matches_sequential_on_the_sales_workload() {
    use qarith::datagen::sales::{paper_queries, sales_catalog, sales_database, SalesScale};
    use qarith::engine::cq;

    let db = sales_database(&SalesScale::tiny(), 2020);
    let catalog = sales_catalog();
    for (name, sql) in paper_queries() {
        let lowered = qarith::sql::compile(sql, &catalog).unwrap();
        let candidates = cq::execute(&lowered.query, &db, &lowered.cq_options()).unwrap();
        for method in [MethodChoice::Auto, MethodChoice::Afpras] {
            let options = MeasureOptions { method, ..MeasureOptions::default() };
            let sequential = CertaintyEngine::new(MeasureOptions {
                batch: BatchOptions { threads: 1, dedup: false },
                ..options.clone()
            });
            let batched = CertaintyEngine::new(MeasureOptions {
                batch: BatchOptions { threads: 4, dedup: true },
                ..options
            })
            .with_cache(std::sync::Arc::new(NuCache::new()));
            let s = sequential.measure_candidates(candidates.clone()).unwrap();
            let b = batched.measure_candidates(candidates.clone()).unwrap();
            assert_eq!(s.len(), b.len());
            for (x, y) in s.iter().zip(&b) {
                assert_eq!(
                    bits(&x.certainty),
                    bits(&y.certainty),
                    "{name} / {method:?} / {}",
                    x.tuple
                );
            }
        }
    }
}

#[test]
fn thread_count_does_not_change_bits() {
    let formulas = vec![
        QfFormula::atom(Atom::new(
            Polynomial::var(Var(0)) * Polynomial::var(Var(1)) - Polynomial::var(Var(2)),
            ConstraintOp::Lt,
        )),
        QfFormula::atom(Atom::new(Polynomial::var(Var(5)), ConstraintOp::Gt)),
        QfFormula::or([
            QfFormula::atom(Atom::new(
                Polynomial::var(Var(1)) - Polynomial::var(Var(3)),
                ConstraintOp::Le,
            )),
            QfFormula::atom(Atom::new(Polynomial::var(Var(2)), ConstraintOp::Ge)),
        ]),
    ];
    let candidates = candidates_from(formulas);
    let run = |threads: usize| {
        let engine = CertaintyEngine::new(MeasureOptions {
            method: MethodChoice::Afpras,
            batch: BatchOptions { threads, dedup: true },
            ..MeasureOptions::default()
        });
        engine.measure_batch(candidates.clone()).unwrap()
    };
    let one = run(1);
    for threads in [2, 4, 8] {
        let many = run(threads);
        for (x, y) in one.answers.iter().zip(&many.answers) {
            assert_eq!(bits(&x.certainty), bits(&y.certainty), "threads = {threads}");
        }
    }
}
