//! Golden end-to-end test of the §9 sales pipeline at tiny scale.
//!
//! SQL text → lowering (with `LIMIT` carried through
//! `LoweredQuery::cq_options`) → CQ execution → batch measurement, with
//! a fixed generator seed, pins:
//!
//! * the candidate count and order per query (LIMIT handling included);
//! * each candidate's certainty — the exact rational where an exact
//!   evaluator applies, the deterministic closed-form `f64` (2-D arc
//!   arithmetic) within 1e-9 elsewhere.
//!
//! Most values below come from exact evaluators (closed forms); a few
//! high-dimensional candidates take the AFPRAS with the default fixed
//! seed, which is equally deterministic. A pipeline refactor that
//! changes candidate generation, LIMIT semantics, grounding, ae-
//! simplification, method routing, or the evaluators themselves will
//! show up here as a concrete value diff.

use qarith::datagen::sales::{paper_queries, sales_catalog, sales_database, SalesScale};
use qarith::engine::cq;
use qarith::prelude::*;

const SEED: u64 = 2020;

/// A pinned certainty value.
enum Golden {
    /// Exact rational `n/d` (order fragment, dimensions ≤ 1, μ = 1).
    Exact(i128, i128),
    /// Deterministic closed-form `f64` (2-D arc arithmetic).
    Real(f64),
}

fn goldens() -> [(&'static str, Vec<(&'static str, Golden)>); 3] {
    [
        (
            "Competitive Advantage",
            vec![
                ("(\"seg0\")", Golden::Exact(1, 1)),
                ("(\"seg1\")", Golden::Real(0.8822115384615384)),
                ("(\"seg2\")", Golden::Real(0.7788461538461539)),
                ("(\"seg4\")", Golden::Real(0.5088945016203392)),
                ("(\"seg5\")", Golden::Real(0.75)),
                ("(\"seg6\")", Golden::Real(0.535311910781589)),
                ("(\"seg7\")", Golden::Exact(1, 1)),
                ("(\"seg8\")", Golden::Real(0.5847914346785765)),
                ("(\"seg9\")", Golden::Real(0.7427884615384616)),
                ("(\"seg10\")", Golden::Real(0.748466491134487)),
                ("(\"seg11\")", Golden::Real(0.540523353320516)),
                ("(\"seg12\")", Golden::Exact(1, 1)),
                ("(\"seg13\")", Golden::Exact(1, 1)),
                ("(\"seg14\")", Golden::Exact(1, 1)),
                ("(\"seg15\")", Golden::Real(0.49038461538461536)),
                ("(\"seg16\")", Golden::Exact(1, 2)),
                ("(\"seg18\")", Golden::Exact(1, 1)),
                ("(\"seg19\")", Golden::Real(0.7489850162140236)),
            ],
        ),
        (
            "Never Knowingly Undersold",
            vec![
                ("(58)", Golden::Real(0.7259615384615384)),
                ("(93)", Golden::Real(0.75)),
                ("(22)", Golden::Exact(1, 2)),
                ("(30)", Golden::Real(0.5)),
                ("(18)", Golden::Exact(1, 2)),
                ("(29)", Golden::Real(0.6370388284345229)),
                ("(31)", Golden::Exact(1, 2)),
                ("(77)", Golden::Real(0.5749607145025666)),
                ("(74)", Golden::Exact(1, 2)),
                ("(99)", Golden::Exact(1, 2)),
                ("(60)", Golden::Real(0.49038461538461536)),
                ("(7)", Golden::Exact(1, 2)),
                ("(47)", Golden::Exact(1, 2)),
                ("(63)", Golden::Exact(1, 2)),
                ("(73)", Golden::Exact(1, 2)),
                ("(34)", Golden::Exact(1, 2)),
                ("(98)", Golden::Exact(1, 2)),
                ("(21)", Golden::Exact(1, 2)),
                ("(23)", Golden::Real(0.7211538461538461)),
                ("(75)", Golden::Exact(1, 2)),
                ("(84)", Golden::Exact(1, 2)),
                ("(19)", Golden::Real(0.5000000000000001)),
                ("(96)", Golden::Exact(1, 2)),
                ("(17)", Golden::Exact(1, 2)),
                ("(88)", Golden::Exact(1, 2)),
            ],
        ),
        (
            "Unfair Discount",
            vec![
                ("(50)", Golden::Exact(1, 2)),
                ("(56)", Golden::Exact(1, 2)),
                ("(4)", Golden::Exact(1, 2)),
                ("(64)", Golden::Real(0.5048076923076923)),
                ("(19)", Golden::Exact(1, 2)),
                ("(26)", Golden::Exact(1, 2)),
                ("(63)", Golden::Exact(1, 2)),
                ("(27)", Golden::Exact(1, 2)),
                ("(46)", Golden::Exact(1, 2)),
                ("(68)", Golden::Real(0.5)),
                ("(28)", Golden::Exact(1, 2)),
                ("(57)", Golden::Exact(1, 2)),
                ("(7)", Golden::Exact(1, 2)),
                ("(39)", Golden::Exact(1, 2)),
                ("(33)", Golden::Exact(1, 2)),
                ("(60)", Golden::Exact(1, 2)),
                ("(44)", Golden::Exact(1, 2)),
                ("(13)", Golden::Exact(1, 2)),
                ("(77)", Golden::Exact(1, 2)),
                ("(52)", Golden::Exact(1, 2)),
                ("(37)", Golden::Exact(1, 2)),
                ("(20)", Golden::Exact(1, 1)),
                ("(54)", Golden::Real(0.5)),
            ],
        ),
    ]
}

#[test]
fn tiny_scale_pipeline_is_pinned() {
    let db = sales_database(&SalesScale::tiny(), SEED);
    let catalog = sales_catalog();
    let engine = CertaintyEngine::new(MeasureOptions::default());

    let expected = goldens();
    for ((name, sql), (golden_name, rows)) in paper_queries().into_iter().zip(expected) {
        assert_eq!(name, golden_name, "query order is part of the pin");
        let lowered = qarith::sql::compile(sql, &catalog).unwrap();
        assert_eq!(lowered.limit, Some(25), "{name}: LIMIT 25 must survive lowering");
        let candidates = cq::execute(&lowered.query, &db, &lowered.cq_options()).unwrap();
        assert!(candidates.len() <= 25, "{name}: candidate-counting LIMIT caps distinct results");
        let answers = engine.measure_candidates(candidates).unwrap();
        assert_eq!(answers.len(), rows.len(), "{name}: candidate count drifted");

        for (answer, (tuple, golden)) in answers.iter().zip(&rows) {
            assert_eq!(&answer.tuple.to_string(), tuple, "{name}: candidate order drifted");
            match golden {
                Golden::Exact(n, d) => {
                    assert_eq!(
                        answer.certainty.method,
                        Method::Exact,
                        "{name} {tuple}: expected an exact evaluator"
                    );
                    assert_eq!(answer.certainty.samples, 0);
                    assert_eq!(
                        answer.certainty.exact,
                        Some(Rational::new(*n, *d)),
                        "{name} {tuple}: exact certainty drifted"
                    );
                }
                Golden::Real(v) => {
                    assert!(
                        answer.certainty.exact.is_none(),
                        "{name} {tuple}: expected a non-rational value"
                    );
                    assert!(
                        (answer.certainty.value - v).abs() < 1e-9,
                        "{name} {tuple}: certainty drifted: {} vs pinned {v}",
                        answer.certainty.value
                    );
                }
            }
        }
    }
}

/// The rewrite pipeline on the same workload: every estimate stays
/// within ε of the pinned golden values (rewritten estimates are not
/// bit-identical — the sampled formula, budget, and evaluator routing
/// change — but the additive guarantee must hold against the pinned
/// truth), and the decomposition demonstrably fires: at least one
/// workload formula splits into ≥ 2 variable-disjoint factors with a
/// factor routed to an exact evaluator.
#[test]
fn rewritten_estimates_stay_within_epsilon_of_goldens() {
    const EPSILON: f64 = 0.05;
    let db = sales_database(&SalesScale::tiny(), SEED);
    let catalog = sales_catalog();
    let engine = CertaintyEngine::new(
        MeasureOptions::default().with_epsilon(EPSILON).with_rewrite(RewriteOptions::full()),
    );

    let mut factored = 0usize;
    let mut exact_factors = 0usize;
    for ((name, sql), (golden_name, rows)) in paper_queries().into_iter().zip(goldens()) {
        assert_eq!(name, golden_name);
        let lowered = qarith::sql::compile(sql, &catalog).unwrap();
        let candidates = cq::execute(&lowered.query, &db, &lowered.cq_options()).unwrap();
        let outcome = engine.measure_batch(candidates).unwrap();
        factored += outcome.stats.rewrite.factored;
        exact_factors += outcome.stats.rewrite.exact_factors;
        assert_eq!(outcome.answers.len(), rows.len(), "{name}: candidate count drifted");
        for (answer, (tuple, golden)) in outcome.answers.iter().zip(&rows) {
            assert_eq!(&answer.tuple.to_string(), tuple, "{name}: candidate order drifted");
            // Exact goldens are ground truth: the rewritten estimate's
            // own ε budget is the whole allowance. `Real` goldens
            // include values the default engine *sampled* (ε = 0.05,
            // δ = 0.25), so both sides carry a budget and the bounds
            // compose additively — and indeed one NU golden sits
            // ~0.053 from the (now exactly computable) truth, inside
            // its allowed δ-failure slack.
            let (pinned, tolerance) = match golden {
                Golden::Exact(n, d) => (Rational::new(*n, *d).to_f64(), EPSILON),
                Golden::Real(v) => (*v, 2.0 * EPSILON),
            };
            assert!(
                (answer.certainty.value - pinned).abs() <= tolerance,
                "{name} {tuple}: rewritten {} vs golden {pinned} exceeds {tolerance}",
                answer.certainty.value
            );
            assert!(
                answer.certainty.is_certain() || answer.certainty.rewritten,
                "{name} {tuple}: measured answers must carry rewrite provenance"
            );
        }
    }
    assert!(factored >= 1, "at least one workload formula decomposes into ≥ 2 factors");
    assert!(exact_factors >= 1, "at least one factor routes to an exact evaluator");
}

#[test]
fn limit_truncates_when_candidates_exceed_it() {
    // At tiny scale the NU query saturates LIMIT 25 exactly; re-running
    // it without a limit must produce at least as many candidates and
    // the same leading 25 — the window is a prefix, not a sample.
    let db = sales_database(&SalesScale::tiny(), SEED);
    let catalog = sales_catalog();
    let (_, sql) = paper_queries()[1];
    let lowered = qarith::sql::compile(sql, &catalog).unwrap();
    let limited = cq::execute(&lowered.query, &db, &lowered.cq_options()).unwrap();
    assert_eq!(limited.len(), 25, "NU saturates its LIMIT at tiny scale");
    let exhaustive =
        cq::execute(&lowered.query, &db, &qarith::engine::cq::CqOptions::default()).unwrap();
    assert!(exhaustive.len() >= limited.len());
    for (l, e) in limited.iter().zip(&exhaustive) {
        assert_eq!(l.tuple, e.tuple, "LIMIT window must be a prefix of the full result");
    }
}
