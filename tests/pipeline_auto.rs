//! Auto-routing of the pipeline: conjunctive queries take the join
//! executor, non-conjunctive queries (negation, universals) fall back to
//! head enumeration — and both report the same measures on queries that
//! are expressible both ways.

use qarith::core::{CertaintyEngine, MeasureOptions};
use qarith::prelude::*;

fn db() -> Database {
    let mut db = Database::new();
    let schema =
        RelationSchema::new("Offer", vec![Column::base("seller"), Column::num("price")]).unwrap();
    let mut r = Relation::empty(schema);
    r.insert_values(vec![Value::str("a"), Value::num(10)]).unwrap();
    r.insert_values(vec![Value::str("b"), Value::NumNull(NumNullId(0))]).unwrap();
    r.insert_values(vec![Value::str("c"), Value::num(30)]).unwrap();
    db.add_relation(r).unwrap();
    db
}

/// q(s) = ∃p Offer(s,p) ∧ p < 20 — conjunctive.
fn cheap_offers(db: &Database) -> Query {
    Query::new(
        vec![TypedVar::base("s")],
        Formula::exists(
            vec![TypedVar::num("p")],
            Formula::and(vec![
                Formula::rel(
                    "Offer",
                    vec![Arg::Base(BaseTerm::var("s")), Arg::Num(NumTerm::var("p"))],
                ),
                Formula::cmp(NumTerm::var("p"), CompareOp::Lt, NumTerm::int(20)),
            ]),
        ),
        &db.catalog(),
    )
    .unwrap()
}

/// q(s) = ∃p Offer(s,p) ∧ ¬(p ≥ 20) — the same query with a negation,
/// which forces the enumeration path.
fn cheap_offers_negated(db: &Database) -> Query {
    Query::new(
        vec![TypedVar::base("s")],
        Formula::exists(
            vec![TypedVar::num("p")],
            Formula::and(vec![
                Formula::rel(
                    "Offer",
                    vec![Arg::Base(BaseTerm::var("s")), Arg::Num(NumTerm::var("p"))],
                ),
                Formula::not(Formula::cmp(NumTerm::var("p"), CompareOp::Ge, NumTerm::int(20))),
            ]),
        ),
        &db.catalog(),
    )
    .unwrap()
}

#[test]
fn both_routes_agree_on_equivalent_queries() {
    let db = db();
    let engine = CertaintyEngine::new(MeasureOptions::default());

    let cq = cheap_offers(&db);
    assert!(cq.fragment().conjunctive);
    let via_cq = engine.answers_auto(&cq, &db, 0.0).unwrap();

    let fo = cheap_offers_negated(&db);
    assert!(!fo.fragment().conjunctive);
    let via_enum = engine.answers_auto(&fo, &db, 0.0).unwrap();

    // Same candidates, same measures. Seller a: certain (10 < 20).
    // Seller b: μ = 1/2 (⊤0 < 20 asymptotically ⇔ ⊤0 < 0 …): the null is
    // unconstrained, so the asymptotic measure of ⊤0 < 20 is 1/2.
    // Seller c: 30 < 20 never holds — excluded from both result sets.
    let collect = |answers: &[qarith::core::AnswerWithCertainty]| {
        let mut v: Vec<(String, Option<Rational>)> =
            answers.iter().map(|a| (a.tuple.get(0).to_string(), a.certainty.exact)).collect();
        v.sort();
        v
    };
    let a = collect(&via_cq);
    let b = collect(&via_enum);
    assert_eq!(a, b);
    assert_eq!(a.len(), 2);
    assert_eq!(a[0], ("\"a\"".to_string(), Some(Rational::ONE)));
    assert_eq!(a[1], ("\"b\"".to_string(), Some(Rational::new(1, 2))));
}

#[test]
fn min_certainty_filters_both_routes() {
    let db = db();
    let engine = CertaintyEngine::new(MeasureOptions::default());
    let cq = cheap_offers(&db);
    let strict = engine.answers_auto(&cq, &db, 0.9).unwrap();
    assert_eq!(strict.len(), 1, "only the certain seller survives the 0.9 bar");
    let fo = cheap_offers_negated(&db);
    let strict = engine.answers_auto(&fo, &db, 0.9).unwrap();
    assert_eq!(strict.len(), 1);
}

#[test]
fn min_certainty_boundary_is_exclusive_on_both_routes() {
    // Seller b's measure is exactly 1/2 (one unconstrained null). The
    // admission predicate (`qarith::core::pipeline::exceeds_min_certainty`)
    // is documented as *strictly greater*, shared by the conjunctive fast
    // path and the enumeration fallback: a candidate sitting exactly at
    // the threshold is excluded by both, and nudging the threshold just
    // below readmits it on both.
    let db = db();
    let engine = CertaintyEngine::new(MeasureOptions::default());

    let cq = cheap_offers(&db);
    assert!(cq.fragment().conjunctive);
    let fo = cheap_offers_negated(&db);
    assert!(!fo.fragment().conjunctive);

    for (query, route) in [(&cq, "conjunctive"), (&fo, "enumerated")] {
        let at_half = engine.answers_auto(query, &db, 0.5).unwrap();
        assert_eq!(at_half.len(), 1, "{route}: μ = 1/2 is excluded at min_certainty = 1/2");
        assert_eq!(at_half[0].tuple.get(0).to_string(), "\"a\"");

        let below_half = engine.answers_auto(query, &db, 0.4999).unwrap();
        assert_eq!(below_half.len(), 2, "{route}: μ = 1/2 passes a threshold just below");

        // μ = 0 candidates (seller c) stay excluded even at 0.0.
        let at_zero = engine.answers_auto(query, &db, 0.0).unwrap();
        assert!(
            at_zero.iter().all(|a| a.tuple.get(0).to_string() != "\"c\""),
            "{route}: impossible answers are excluded at min_certainty = 0.0"
        );
    }
}

#[test]
fn universal_queries_route_through_enumeration() {
    // q(s) = ∀p Offer(s,p) → p < 20: sellers whose *every* offer is cheap.
    let db = db();
    let q = Query::new(
        vec![TypedVar::base("s")],
        Formula::forall(
            vec![TypedVar::num("p")],
            Formula::implies(
                Formula::rel(
                    "Offer",
                    vec![Arg::Base(BaseTerm::var("s")), Arg::Num(NumTerm::var("p"))],
                ),
                Formula::cmp(NumTerm::var("p"), CompareOp::Lt, NumTerm::int(20)),
            ),
        ),
        &db.catalog(),
    )
    .unwrap();
    let engine = CertaintyEngine::new(MeasureOptions::default());
    let answers = engine.answers_auto(&q, &db, 0.0).unwrap();
    // "a" qualifies certainly; "b" with μ = 1/2; "c" never. The head also
    // ranges over sellers with no failing offer trivially — but every
    // base value in the domain is a seller here.
    let mut by_seller: Vec<(String, f64)> =
        answers.iter().map(|a| (a.tuple.get(0).to_string(), a.certainty.value)).collect();
    by_seller.sort_by(|x, y| x.0.cmp(&y.0));
    assert_eq!(by_seller.len(), 2);
    assert_eq!(by_seller[0].0, "\"a\"");
    assert_eq!(by_seller[0].1, 1.0);
    assert_eq!(by_seller[1].0, "\"b\"");
    assert_eq!(by_seller[1].1, 0.5);
}
