//! Soundness of the `qarith-rewrite` pipeline: rewritten measurements
//! agree with unrewritten ones, and the independence-decomposition
//! product rule is pinned on hand-computed disjoint wedges.
//!
//! Three families of properties:
//!
//! 1. **Cross-pipeline agreement** — for proptest-generated formulas,
//!    `ν` measured with the rewrite pipeline enabled agrees with the
//!    unrewritten measurement within the sum of the two error budgets
//!    plus slack, for the exact/FPRAS/AFPRAS routes alike; and when
//!    both sides land on exact evaluators the values agree to rounding.
//! 2. **Product rule** — decomposition-product estimates (both the
//!    joint-residual default and the explicit ε/k `Split` budget) agree
//!    with whole-formula estimates, and hand-computed disjoint wedges
//!    pin the exact products.
//! 3. **Pass semantics** — `qarith_rewrite::ae_simplify` reproduces the
//!    deprecated `QfFormula::ae_simplified` shim bit for bit, and the
//!    full pass pipeline preserves per-direction limit truth on the
//!    Boolean-identity passes.

use proptest::prelude::*;

use qarith::constraints::asymptotic::formula_limit_truth;
use qarith::constraints::{Atom, ConstraintOp, Polynomial, QfFormula, Var};
use qarith::core::afpras::AfprasOptions;
use qarith::engine::cq::CandidateAnswer;
use qarith::prelude::*;
use qarith::rewrite::{ae_simplify, FactorBudget};

fn z(i: u32) -> Polynomial {
    Polynomial::var(Var(i))
}

fn c(n: i64) -> Polynomial {
    Polynomial::constant(Rational::from_int(n))
}

fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
    QfFormula::atom(Atom::new(p, op))
}

fn any_op() -> impl Strategy<Value = ConstraintOp> {
    prop_oneof![
        Just(ConstraintOp::Lt),
        Just(ConstraintOp::Le),
        Just(ConstraintOp::Gt),
        Just(ConstraintOp::Ge),
        Just(ConstraintOp::Eq),
        Just(ConstraintOp::Ne),
    ]
}

/// A linear atom over a few variables — in reach of every method.
fn linear_atom(max_vars: u32) -> impl Strategy<Value = QfFormula> {
    (prop::collection::vec((-4i128..=4, 0..max_vars), 1..3), -20i128..=20, any_op()).prop_map(
        |(coeffs, k, o)| {
            let mut p = Polynomial::constant(Rational::new(k, 2));
            for (a, v) in coeffs {
                p = p + Polynomial::constant(Rational::new(a, 1)) * Polynomial::var(Var(v));
            }
            QfFormula::atom(Atom::new(p, o))
        },
    )
}

fn linear_formula(max_vars: u32) -> impl Strategy<Value = QfFormula> {
    linear_atom(max_vars).prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(QfFormula::and),
            prop::collection::vec(inner.clone(), 1..4).prop_map(QfFormula::or),
            inner.prop_map(QfFormula::negated),
        ]
    })
}

fn engine(method: MethodChoice, rewrite: bool) -> CertaintyEngine {
    let mut options = MeasureOptions { method, ..MeasureOptions::default() };
    if rewrite {
        options = options.with_rewrite(RewriteOptions::full());
    }
    CertaintyEngine::new(options)
}

// ---------------------------------------------------------------------
// 1. Rewritten ν agrees with unrewritten ν across methods
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Auto route: both sides carry (at worst) the default AFPRAS ε =
    /// 0.05 additive budget; 2ε + slack covers two independent runs.
    #[test]
    fn rewritten_auto_agrees(f in linear_formula(4)) {
        let plain = engine(MethodChoice::Auto, false).nu(&f).unwrap();
        let rewritten = engine(MethodChoice::Auto, true).nu(&f).unwrap();
        prop_assert!(rewritten.rewritten, "provenance flag must be set");
        prop_assert!(!plain.rewritten);
        prop_assert!(
            (plain.value - rewritten.value).abs() < 2.0 * 0.05 + 0.02,
            "plain {} vs rewritten {} on {}", plain.value, rewritten.value, f
        );
        // Exact-on-both-sides cases agree to closed-form rounding.
        if plain.method == Method::Exact && rewritten.method == Method::Exact {
            prop_assert!(
                (plain.value - rewritten.value).abs() < 1e-9,
                "exact drift: {} vs {} on {}", plain.value, rewritten.value, f
            );
        }
    }

    /// Forced AFPRAS with and without rewriting.
    #[test]
    fn rewritten_afpras_agrees(f in linear_formula(3), seed in 0u64..300) {
        let mut options = MeasureOptions {
            method: MethodChoice::Afpras,
            afpras: AfprasOptions { epsilon: 0.04, delta: 0.01, seed, ..AfprasOptions::default() },
            ..MeasureOptions::default()
        };
        let plain = CertaintyEngine::new(options.clone()).nu(&f).unwrap();
        options = options.with_rewrite(RewriteOptions::full());
        let rewritten = CertaintyEngine::new(options).nu(&f).unwrap();
        prop_assert!(
            (plain.value - rewritten.value).abs() < 2.0 * 0.04 + 0.03,
            "plain {} vs rewritten {} on {}", plain.value, rewritten.value, f
        );
    }

    /// Forced FPRAS with and without rewriting (linear formulas only —
    /// FPRAS's domain).
    #[test]
    fn rewritten_fpras_agrees(f in linear_formula(3), seed in 0u64..300) {
        let mut options = MeasureOptions { method: MethodChoice::Fpras, ..MeasureOptions::default() };
        options.fpras.epsilon = 0.08;
        options.fpras.seed = seed;
        let plain = CertaintyEngine::new(options.clone()).nu(&f).unwrap();
        options = options.with_rewrite(RewriteOptions::full());
        let rewritten = CertaintyEngine::new(options).nu(&f).unwrap();
        // Multiplicative budgets on [0,1] values: additive gap ≤ ε each,
        // plus heuristic-volume slack (as in tests/method_consistency.rs).
        prop_assert!(
            (plain.value - rewritten.value).abs() < 2.0 * 0.08 + 0.05,
            "plain {} vs rewritten {} on {}", plain.value, rewritten.value, f
        );
    }

    /// The decomposition product rule: Split-budget per-factor sampling
    /// agrees with the joint-residual default, and both with the
    /// unrewritten estimate.
    #[test]
    fn split_budget_agrees_with_residual(
        fs in prop::collection::vec(linear_formula(2), 2..4),
        seed in 0u64..200,
    ) {
        // Shift each part onto its own variables: a guaranteed
        // variable-disjoint conjunction.
        let parts: Vec<QfFormula> = fs.iter().enumerate().map(|(i, f)| {
            fn shift(f: &QfFormula, by: u32) -> QfFormula {
                match f {
                    QfFormula::True => QfFormula::True,
                    QfFormula::False => QfFormula::False,
                    QfFormula::Atom(a) =>
                        QfFormula::atom(Atom::new(a.poly().map_vars(|v| Var(v.0 + by)), a.op())),
                    QfFormula::Not(inner) => shift(inner, by).negated(),
                    QfFormula::And(ps) => QfFormula::and(ps.iter().map(|p| shift(p, by))),
                    QfFormula::Or(ps) => QfFormula::or(ps.iter().map(|p| shift(p, by))),
                }
            }
            shift(f, i as u32 * 2)
        }).collect();
        let f = QfFormula::and(parts);

        let base = MeasureOptions {
            method: MethodChoice::Afpras,
            afpras: AfprasOptions { epsilon: 0.05, delta: 0.02, seed, ..AfprasOptions::default() },
            ..MeasureOptions::default()
        };
        let plain = CertaintyEngine::new(base.clone()).nu(&f).unwrap();
        let residual = CertaintyEngine::new(base.clone().with_rewrite(RewriteOptions::full()))
            .nu(&f).unwrap();
        let mut split_options = RewriteOptions::full();
        split_options.budget = FactorBudget::Split;
        let split = CertaintyEngine::new(base.with_rewrite(split_options)).nu(&f).unwrap();

        prop_assert!((plain.value - residual.value).abs() < 2.0 * 0.05 + 0.03,
            "residual {} vs plain {} on {}", residual.value, plain.value, f);
        prop_assert!((plain.value - split.value).abs() < 2.0 * 0.05 + 0.03,
            "split {} vs plain {} on {}", split.value, plain.value, f);
        prop_assert!((residual.value - split.value).abs() < 2.0 * 0.05 + 0.03);
    }

    /// The batch path with rewriting: per-candidate answers equal the
    /// one-at-a-time rewritten `nu`, bit for bit, warm or cold.
    #[test]
    fn rewritten_batch_matches_rewritten_nu(
        formulas in prop::collection::vec(linear_formula(3), 1..5),
    ) {
        let eng = engine(MethodChoice::Auto, true)
            .with_cache(std::sync::Arc::new(NuCache::new()));
        let candidates: Vec<CandidateAnswer> = formulas.iter().enumerate().map(|(i, f)| {
            CandidateAnswer {
                tuple: Tuple::new(vec![Value::int(i as i64)]),
                formula: std::sync::Arc::new(f.clone()),
                derivations: 1,
                certain: false,
                truncated: false,
            }
        }).collect();
        let batch = eng.measure_batch(candidates.clone()).unwrap();
        for (cand, ans) in candidates.iter().zip(&batch.answers) {
            let solo = eng.nu(&cand.formula).unwrap();
            // Asymptotic-class members may share a group whose exact
            // closed forms differ from a standalone evaluation in the
            // final ulp (documented in the batch engine); values are
            // equal to rounding.
            prop_assert!((solo.value - ans.certainty.value).abs() < 1e-9,
                "batch {} vs solo {} on {}", ans.certainty.value, solo.value, cand.formula);
            prop_assert!(ans.certainty.rewritten);
        }
        // Warm pass: served from the ν-cache with identical bits.
        let warm = eng.measure_batch(candidates).unwrap();
        prop_assert_eq!(warm.stats.measured, 0);
        for (a, b) in batch.answers.iter().zip(&warm.answers) {
            prop_assert_eq!(a.certainty.value.to_bits(), b.certainty.value.to_bits());
        }
    }

    /// `ae_simplify` is bit-identical to the frozen deprecated shim, and
    /// the Boolean-normalization passes preserve limit truth pointwise.
    #[test]
    fn passes_preserve_semantics(
        f in linear_formula(3),
        dir in prop::collection::vec(-1.0f64..1.0, 6),
    ) {
        #[allow(deprecated)]
        let shim = f.ae_simplified();
        prop_assert_eq!(ae_simplify(&f), shim);

        // Normalization-only simplification (no a.e. atom surgery beyond
        // the shared ae pass) keeps the limit truth at every direction
        // where no equality atom is on its boundary — proptest directions
        // are generic, so just compare outcomes through the ae-simplified
        // forms on both sides.
        let rewriter = Rewriter::new(RewriteOptions::full());
        let simplified = rewriter.simplify(&f);
        let baseline = ae_simplify(&f);
        // `simplified` additionally folds/normalizes; both are ν-equal,
        // and on generic directions the limit truths agree.
        let a = formula_limit_truth(&baseline, &dir);
        let b = formula_limit_truth(&simplified, &dir);
        if a != b {
            // Disagreement is only possible on the measure-zero boundary
            // set of a folded atom; a generic perturbation must re-agree.
            let nudged: Vec<f64> =
                dir.iter().enumerate().map(|(i, x)| x + 1e-4 * (i as f64 + 1.0) * 0.7317).collect();
            prop_assert_eq!(
                formula_limit_truth(&baseline, &nudged),
                formula_limit_truth(&simplified, &nudged),
                "persistent drift on {}", f
            );
        }
    }
}

// ---------------------------------------------------------------------
// 2. Hand-computed product-rule pins
// ---------------------------------------------------------------------

#[test]
fn disjoint_wedge_products_are_exact() {
    // Three independent half-lines: ν = (1/2)³.
    let f = QfFormula::and([
        atom(z(0), ConstraintOp::Gt),
        atom(z(1), ConstraintOp::Gt),
        atom(z(2), ConstraintOp::Gt),
    ]);
    let est = engine(MethodChoice::Auto, true).nu(&f).unwrap();
    assert_eq!(est.exact, Some(Rational::new(1, 8)));
    assert_eq!(est.method, Method::Exact);
    assert_eq!(est.samples, 0, "no sampling on fully exact factors");

    // Two disjoint 2-D wedges (Proposition 6.1 family): the measure is
    // the product of the arctangent closed forms.
    let wedge = |x: u32, y: u32, alpha: i64| {
        QfFormula::and([
            atom(z(x), ConstraintOp::Ge),
            atom(z(y) - c(alpha) * z(x), ConstraintOp::Le),
        ])
    };
    let f = QfFormula::and([wedge(0, 1, 1), wedge(2, 3, 3)]);
    let est = engine(MethodChoice::Auto, true).nu(&f).unwrap();
    let closed =
        |alpha: f64| ((alpha).atan() + std::f64::consts::PI / 2.0) / (2.0 * std::f64::consts::PI);
    let expected = closed(1.0) * closed(3.0);
    assert!(
        (est.value - expected).abs() < 1e-9,
        "wedge product {} vs closed form {expected}",
        est.value
    );
    assert_eq!(est.method, Method::Exact);

    // The dual rule on a disjoint disjunction: 1 − (1 − 1/2)(1 − 1/4).
    let f = QfFormula::or([
        atom(z(0), ConstraintOp::Gt),
        QfFormula::and([atom(z(1), ConstraintOp::Gt), atom(z(2), ConstraintOp::Gt)]),
    ]);
    let est = engine(MethodChoice::Auto, true).nu(&f).unwrap();
    assert_eq!(est.exact, Some(Rational::new(5, 8)));
}

#[test]
fn trivial_atom_elimination_reduces_dimension() {
    // (z0² + z1² + 1 > 0) is a.e. true and folds away entirely; what
    // remains is an exact half-line.
    let f = QfFormula::and([
        atom(z(0) * z(0) + z(1) * z(1) + c(1), ConstraintOp::Gt),
        atom(z(2), ConstraintOp::Gt),
    ]);
    let est = engine(MethodChoice::Auto, true).nu(&f).unwrap();
    assert_eq!(est.exact, Some(Rational::new(1, 2)));
    assert_eq!(est.dimension, 1, "folded atoms drop their variables");

    // An a.e.-false atom collapses the whole conjunction.
    let f = QfFormula::and([
        atom(c(-1) * z(0) * z(0) - c(5), ConstraintOp::Gt),
        atom(z(1), ConstraintOp::Gt),
    ]);
    let est = engine(MethodChoice::Auto, true).nu(&f).unwrap();
    assert_eq!(est.exact, Some(Rational::ZERO));
    assert_eq!(est.samples, 0);
}

#[test]
fn exact_only_route_uses_factor_decomposition() {
    // Whole formula: 4 variables, beyond the frozen exact evaluators and
    // the order fragment (coefficients ≠ ±1); factored: two 2-D linear
    // pieces, each exact.
    let f = QfFormula::and([
        atom(c(3) * z(0) - c(2) * z(1), ConstraintOp::Le),
        atom(c(5) * z(2) - c(7) * z(3), ConstraintOp::Ge),
    ]);
    assert!(
        engine(MethodChoice::ExactOnly, false).nu(&f).is_err(),
        "unrewritten exact-only cannot handle the joint formula"
    );
    let est = engine(MethodChoice::ExactOnly, true).nu(&f).unwrap();
    assert_eq!(est.method, Method::Exact);
    assert!((est.value - 0.25).abs() < 1e-9, "two independent halfplanes: 1/2 · 1/2");
}
