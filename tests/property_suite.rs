//! Property-based tests over the whole stack.
//!
//! Strategy-generated inputs exercise the invariants that the unit tests
//! check pointwise:
//!
//! * rational arithmetic is a field (on non-overflowing inputs);
//! * polynomial arithmetic is a commutative ring, and evaluation is a
//!   homomorphism;
//! * NNF / DNF / almost-everywhere simplification preserve semantics;
//! * the asymptotic truth of Lemma 8.4 agrees with evaluation at large k;
//! * grounding (Proposition 5.3) is correct: `ℝ ⊨ φ(v̄)` iff
//!   `v(a) ∈ q(v(D))`, for random small databases, CQs, and valuations;
//! * the CQ executor produces formulas equivalent to the generic
//!   grounding translation;
//! * the AFPRAS lands within ε of the exact order-fragment measure.

use proptest::prelude::*;

use qarith::constraints::asymptotic::{eval_at_scaled, formula_limit_truth};
use qarith::constraints::{Atom, ConstraintOp, Polynomial, QfFormula, Var};
use qarith::core::afpras::{estimate_nu, AfprasOptions};
use qarith::core::exact::order;
use qarith::engine::cq::{self, CqOptions};
use qarith::engine::{ground, naive};
use qarith::prelude::*;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn rational() -> impl Strategy<Value = Rational> {
    (-50i128..=50, 1i128..=12).prop_map(|(n, d)| Rational::new(n, d))
}

fn polynomial(max_vars: u32) -> impl Strategy<Value = Polynomial> {
    // Sum of up to 4 terms: coefficient × (var^e [ × var^e ]).
    prop::collection::vec((rational(), 0..max_vars, 0u32..=2, 0..max_vars, 0u32..=1), 0..4)
        .prop_map(|terms| {
            let mut p = Polynomial::zero();
            for (c, v1, e1, v2, e2) in terms {
                let mono =
                    qarith::constraints::Monomial::from_pairs([(Var(v1), e1), (Var(v2), e2)]);
                p.add_term(mono, c).unwrap();
            }
            p
        })
}

fn op() -> impl Strategy<Value = ConstraintOp> {
    prop_oneof![
        Just(ConstraintOp::Lt),
        Just(ConstraintOp::Le),
        Just(ConstraintOp::Eq),
        Just(ConstraintOp::Ne),
        Just(ConstraintOp::Gt),
        Just(ConstraintOp::Ge),
    ]
}

fn formula(max_vars: u32) -> impl Strategy<Value = QfFormula> {
    let leaf = (polynomial(max_vars), op()).prop_map(|(p, o)| QfFormula::atom(Atom::new(p, o)));
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(QfFormula::and),
            prop::collection::vec(inner.clone(), 1..3).prop_map(QfFormula::or),
            inner.prop_map(QfFormula::negated),
        ]
    })
}

fn point(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-4.0f64..4.0, dim)
}

// ---------------------------------------------------------------------
// Rationals and polynomials
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rational_field_axioms(a in rational(), b in rational(), c in rational()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Rational::ZERO);
        if !b.is_zero() {
            prop_assert_eq!(a / b * b, a);
        }
    }

    #[test]
    fn rational_order_is_compatible_with_arithmetic(a in rational(), b in rational(), c in rational()) {
        if a < b {
            prop_assert!(a + c < b + c);
            if c.signum() > 0 {
                prop_assert!(a * c < b * c);
            }
            if c.signum() < 0 {
                prop_assert!(a * c > b * c);
            }
        }
    }

    #[test]
    fn polynomial_ring_axioms(p in polynomial(3), q in polynomial(3), r in polynomial(3)) {
        prop_assert_eq!(&p + &q, &q + &p);
        prop_assert_eq!(&p * &q, &q * &p);
        prop_assert_eq!(&(&p + &q) + &r, &p + &(&q + &r));
        prop_assert_eq!(&p * &(&q + &r), &(&p * &q) + &(&p * &r));
        prop_assert!((&p - &p).is_zero());
    }

    #[test]
    fn polynomial_evaluation_is_a_homomorphism(
        p in polynomial(3),
        q in polynomial(3),
        pt in point(3),
    ) {
        let sum = (&p + &q).eval_f64(&pt);
        prop_assert!((sum - (p.eval_f64(&pt) + q.eval_f64(&pt))).abs() < 1e-6);
        let prod = (&p * &q).eval_f64(&pt);
        prop_assert!((prod - p.eval_f64(&pt) * q.eval_f64(&pt)).abs() < 1e-4);
    }

    #[test]
    fn homogeneous_components_partition(p in polynomial(3), pt in point(3)) {
        let total: f64 = (0..=p.degree())
            .map(|d| p.homogeneous_component(d).eval_f64(&pt))
            .sum();
        prop_assert!((total - p.eval_f64(&pt)).abs() < 1e-6);
    }
}

// ---------------------------------------------------------------------
// Formula transformations
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn nnf_preserves_semantics(f in formula(3), pt in point(3)) {
        prop_assert_eq!(f.eval_f64(&pt), f.nnf().eval_f64(&pt));
    }

    #[test]
    fn dnf_preserves_semantics(f in formula(3), pt in point(3)) {
        if let Ok(dnf) = f.dnf(512) {
            prop_assert_eq!(f.eval_f64(&pt), dnf.eval_f64(&pt));
        }
    }

    #[test]
    fn asymptotic_truth_matches_large_k(f in formula(3), dir in point(3)) {
        // Avoid directions where some atom's restriction sits near a
        // boundary forever (f64 noise); large-but-finite k suffices for
        // the generic directions the strategy produces.
        let limit = formula_limit_truth(&f, &dir);
        let at_large = eval_at_scaled(&f, &dir, 1e8);
        let at_larger = eval_at_scaled(&f, &dir, 1e10);
        // If the two scaled evaluations agree, the limit must match them.
        if at_large == at_larger {
            prop_assert_eq!(limit, at_large);
        }
    }

    #[test]
    fn ae_simplification_preserves_nu_on_order_formulas(f in formula(2)) {
        // Restrict to order-checkable shapes: compare exact measures when
        // both sides qualify.
        let g = qarith::rewrite::ae_simplify(&f);
        if order::is_order_formula(&f) && order::is_order_formula(&g) {
            let a = order::exact_order_measure(&f).unwrap();
            let b = order::exact_order_measure(&g).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}

// ---------------------------------------------------------------------
// Grounding correctness (Proposition 5.3) and executor agreement
// ---------------------------------------------------------------------

/// A small random database over R(a: base, x: num), S(x: num).
fn tiny_db(rows: &[(i64, Option<i64>)], srows: &[Option<i64>]) -> Database {
    let mut db = Database::new();
    let mut next_null = 0u32;
    let schema = RelationSchema::new("R", vec![Column::base("a"), Column::num("x")]).unwrap();
    let mut rel = Relation::empty(schema);
    for &(a, x) in rows {
        let xv = match x {
            Some(v) => Value::num(v),
            None => {
                let id = NumNullId(next_null);
                next_null += 1;
                Value::NumNull(id)
            }
        };
        rel.insert_values(vec![Value::int(a), xv]).unwrap();
    }
    db.add_relation(rel).unwrap();
    let schema = RelationSchema::new("S", vec![Column::num("x")]).unwrap();
    let mut rel = Relation::empty(schema);
    for &x in srows {
        let xv = match x {
            Some(v) => Value::num(v),
            None => {
                let id = NumNullId(next_null);
                next_null += 1;
                Value::NumNull(id)
            }
        };
        rel.insert_values(vec![xv]).unwrap();
    }
    db.add_relation(rel).unwrap();
    db
}

/// q(a) = ∃x,y R(a,x) ∧ S(y) ∧ x ⋈ y.
fn join_cmp_query(db: &Database, cmp: CompareOp) -> Query {
    Query::new(
        vec![TypedVar::base("a")],
        Formula::exists(
            vec![TypedVar::num("x"), TypedVar::num("y")],
            Formula::and(vec![
                Formula::rel("R", vec![Arg::Base(BaseTerm::var("a")), Arg::Num(NumTerm::var("x"))]),
                Formula::rel("S", vec![Arg::Num(NumTerm::var("y"))]),
                Formula::cmp(NumTerm::var("x"), cmp, NumTerm::var("y")),
            ]),
        ),
        &db.catalog(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 5.3, tested literally: for random valuations v̄,
    /// ℝ ⊨ φ(v̄) iff v(a) ∈ q(v(D)).
    #[test]
    fn grounding_matches_evaluation(
        rows in prop::collection::vec((0i64..3, prop::option::of(-5i64..5)), 1..4),
        srows in prop::collection::vec(prop::option::of(-5i64..5), 1..3),
        vals in prop::collection::vec(-6i64..6, 8),
        cmp in prop_oneof![Just(CompareOp::Lt), Just(CompareOp::Le), Just(CompareOp::Eq), Just(CompareOp::Gt)],
        cand in 0i64..3,
    ) {
        let db = tiny_db(&rows, &srows);
        let q = join_cmp_query(&db, cmp);
        let candidate = Tuple::new(vec![Value::int(cand)]);
        let phi = ground::ground(&q, &db, &candidate).unwrap();

        // Build the valuation ⊤i ↦ vals[i].
        let mut v = Valuation::new();
        let nulls: Vec<NumNullId> = db.num_nulls().into_iter().collect();
        for (i, id) in nulls.iter().enumerate() {
            v.set_num(*id, vals[i % vals.len()]);
        }
        let vdb = db.complete(&v).unwrap();
        let expected = naive::holds_for_candidate(&q, &vdb, &candidate).unwrap();

        // Evaluate φ at the same valuation.
        let max_var = db.num_nulls().iter().map(|id| id.0 as usize).max().map_or(0, |m| m + 1);
        let mut pt = vec![Rational::ZERO; max_var];
        for id in &nulls {
            pt[id.0 as usize] = v.num(*id).unwrap();
        }
        let got = phi.eval_rational(&pt).unwrap();
        prop_assert_eq!(got, expected, "candidate {}, φ = {}", candidate, phi);
    }

    /// The CQ executor's per-candidate formulas agree with the generic
    /// grounding translation at random points.
    #[test]
    fn cq_executor_matches_grounding(
        rows in prop::collection::vec((0i64..3, prop::option::of(-5i64..5)), 1..4),
        srows in prop::collection::vec(prop::option::of(-5i64..5), 1..3),
        pt in point(8),
        cmp in prop_oneof![Just(CompareOp::Lt), Just(CompareOp::Le), Just(CompareOp::Gt)],
    ) {
        let db = tiny_db(&rows, &srows);
        let q = join_cmp_query(&db, cmp);
        let answers = cq::execute(&q, &db, &CqOptions::default()).unwrap();
        for ans in &answers {
            let phi = ground::ground(&q, &db, &ans.tuple).unwrap();
            prop_assert_eq!(
                ans.formula.eval_f64(&pt),
                phi.eval_f64(&pt),
                "candidate {} at {:?}: cq {} vs ground {}",
                &ans.tuple, &pt, &ans.formula, &phi
            );
        }
    }
}

// ---------------------------------------------------------------------
// AFPRAS accuracy against exact order measures
// ---------------------------------------------------------------------

fn order_formula(max_vars: u32) -> impl Strategy<Value = QfFormula> {
    let leaf = (0..max_vars, 0..max_vars, op()).prop_map(|(i, j, o)| {
        let p = if i == j {
            Polynomial::var(Var(i))
        } else {
            Polynomial::var(Var(i)).checked_sub(&Polynomial::var(Var(j))).unwrap()
        };
        QfFormula::atom(Atom::new(p, o))
    });
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(QfFormula::and),
            prop::collection::vec(inner.clone(), 1..3).prop_map(QfFormula::or),
            inner.prop_map(QfFormula::negated),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn afpras_is_within_epsilon_of_exact(f in order_formula(4), seed in 0u64..1000) {
        let exact = order::exact_order_measure(&f).unwrap().to_f64();
        let opts = AfprasOptions { epsilon: 0.05, delta: 0.01, seed, ..AfprasOptions::default() };
        let est = estimate_nu(&f, &opts).unwrap();
        // δ = 0.01 over 24 cases: a failure is possible but very rare;
        // allow 2ε slack to keep the suite stable.
        prop_assert!(
            (est.estimate - exact).abs() < 0.1,
            "exact {exact}, sampled {} (m = {})", est.estimate, est.samples
        );
    }
}
