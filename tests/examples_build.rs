//! Guards the `examples/` directory against rot: `cargo build --examples`
//! must succeed, so API changes that break an example fail the test
//! suite instead of lingering silently (examples are documentation, and
//! nothing else exercises them).
//!
//! CI runs the same command as an explicit step; this test keeps the
//! guarantee for plain local `cargo test` runs too.

use std::process::Command;

#[test]
fn all_examples_compile() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .args(["build", "--examples", "--offline"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("cargo is runnable from a test");
    assert!(
        output.status.success(),
        "`cargo build --examples` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
