//! Docs-drift guard for the stats counters: the "Exported stats
//! counters" table in EXPERIMENTS.md must list exactly the keys each
//! stats block's `as_pairs` emits, in declaration order. Adding,
//! renaming, or reordering a counter in code without updating the
//! table (or vice versa) fails here — the documentation cannot rot.
//!
//! The observability tables are pinned the same way: the per-stage
//! histogram family table must match `Stage::ALL` (names and order),
//! and the slow-log field table must match `SlowRecord::JSON_FIELDS`.

use std::collections::BTreeMap;

use qarith::prelude::*;

/// Parses the EXPERIMENTS.md counter table into block → ordered
/// counter names. Rows look like `| `Block` | `counter` | ... |`.
fn documented_counters() -> BTreeMap<String, Vec<String>> {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/EXPERIMENTS.md"))
        .expect("EXPERIMENTS.md exists at the repo root");
    let section = text
        .split("## Exported stats counters")
        .nth(1)
        .expect("EXPERIMENTS.md has the `Exported stats counters` section")
        .split("\n## ")
        .next()
        .expect("section body");

    let mut blocks: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for line in section.lines() {
        // Data rows: | `Block` | `counter` | ... (skip header/divider).
        let mut cells = line.split('|').map(str::trim);
        let Some("") = cells.next() else { continue };
        let (Some(block), Some(counter)) = (cells.next(), cells.next()) else { continue };
        let strip =
            |s: &str| s.strip_prefix('`').and_then(|s| s.strip_suffix('`')).map(String::from);
        if let (Some(block), Some(counter)) = (strip(block), strip(counter)) {
            blocks.entry(block).or_default().push(counter);
        }
    }
    blocks
}

fn names(pairs: &[(&'static str, u64)]) -> Vec<String> {
    pairs.iter().map(|(k, _)| (*k).to_string()).collect()
}

#[test]
fn documented_counter_table_matches_as_pairs_exactly() {
    let documented = documented_counters();

    let expected: BTreeMap<String, Vec<String>> = [
        ("BatchStats".to_string(), names(&BatchStats::default().as_pairs())),
        ("RewriteStats".to_string(), names(&RewriteStats::default().as_pairs())),
        ("CacheStats".to_string(), names(&CacheStats::default().as_pairs())),
        ("ShardedCacheStats".to_string(), names(&ShardedCacheStats::default().as_pairs())),
        ("ServiceStats".to_string(), names(&ServiceStats::default().as_pairs())),
        ("AdmissionStats".to_string(), names(&AdmissionStats::default().as_pairs())),
        ("NetStats".to_string(), names(&NetStats::default().as_pairs())),
    ]
    .into_iter()
    .collect();

    assert_eq!(
        documented.keys().collect::<Vec<_>>(),
        expected.keys().collect::<Vec<_>>(),
        "EXPERIMENTS.md documents a different set of stats blocks than the code exports"
    );
    for (block, keys) in &expected {
        assert_eq!(
            &documented[block], keys,
            "`{block}`: EXPERIMENTS.md rows must list exactly its as_pairs keys, in order"
        );
    }
}

/// Returns the first backticked cell of every data row in the named
/// EXPERIMENTS.md section's table, in document order.
fn documented_column(section_header: &str) -> Vec<String> {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/EXPERIMENTS.md"))
        .expect("EXPERIMENTS.md exists at the repo root");
    let section = text
        .split(section_header)
        .nth(1)
        .unwrap_or_else(|| panic!("EXPERIMENTS.md has the `{section_header}` section"))
        .split("\n## ")
        .next()
        .expect("section body");
    section
        .lines()
        .filter(|l| l.starts_with("| `"))
        .filter_map(|l| {
            let cell = l.split('|').nth(1)?.trim();
            Some(cell.strip_prefix('`')?.strip_suffix('`')?.to_string())
        })
        .collect()
}

#[test]
fn documented_histogram_families_match_stage_all_exactly() {
    // Both observability tables share the section; the family rows are
    // the `_seconds`-suffixed ones (the rest are slow-log fields).
    let documented: Vec<String> = documented_column("## Per-stage latency histograms")
        .into_iter()
        .filter(|name| name.ends_with("_seconds"))
        .collect();
    let expected: Vec<String> = qarith::trace::Stage::ALL
        .iter()
        .map(|s| format!("qarith_stage_{}_seconds", s.name()))
        .collect();
    assert_eq!(
        documented, expected,
        "the EXPERIMENTS.md histogram-family table must list exactly one \
         `qarith_stage_<name>_seconds` family per Stage::ALL entry, in pipeline order"
    );
}

#[test]
fn documented_slow_log_fields_match_json_fields_exactly() {
    // The slow-log field table follows the family table inside the same
    // section; families all end in `_seconds`, so filtering them out
    // leaves the record fields.
    let documented: Vec<String> = documented_column("## Per-stage latency histograms")
        .into_iter()
        .filter(|name| !name.ends_with("_seconds"))
        .collect();
    assert_eq!(
        documented,
        qarith::trace::SlowRecord::JSON_FIELDS,
        "the EXPERIMENTS.md slow-log field table must list exactly \
         SlowRecord::JSON_FIELDS, in serialization order"
    );
}

#[test]
fn every_block_has_a_meaning_column() {
    // Each documented row carries non-empty provenance + meaning cells
    // (columns 3 and 4) — a bare name row would defeat the table's
    // purpose.
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/EXPERIMENTS.md"))
        .expect("EXPERIMENTS.md exists");
    let section =
        text.split("## Exported stats counters").nth(1).unwrap().split("\n## ").next().unwrap();
    let mut rows = 0;
    for line in section.lines() {
        if !line.starts_with("| `") {
            continue;
        }
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        assert!(cells.len() >= 6, "malformed table row: {line}");
        assert!(!cells[3].is_empty() && !cells[4].is_empty(), "empty cells in: {line}");
        rows += 1;
    }
    // 7 + 6 + 3 + 8 + 9 + 4 + 7 counters across the seven blocks.
    assert_eq!(rows, 44, "expected one row per exported counter");
}
