//! Docs-drift guard for the stats counters: the "Exported stats
//! counters" table in EXPERIMENTS.md must list exactly the keys each
//! stats block's `as_pairs` emits, in declaration order. Adding,
//! renaming, or reordering a counter in code without updating the
//! table (or vice versa) fails here — the documentation cannot rot.

use std::collections::BTreeMap;

use qarith::prelude::*;

/// Parses the EXPERIMENTS.md counter table into block → ordered
/// counter names. Rows look like `| `Block` | `counter` | ... |`.
fn documented_counters() -> BTreeMap<String, Vec<String>> {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/EXPERIMENTS.md"))
        .expect("EXPERIMENTS.md exists at the repo root");
    let section = text
        .split("## Exported stats counters")
        .nth(1)
        .expect("EXPERIMENTS.md has the `Exported stats counters` section")
        .split("\n## ")
        .next()
        .expect("section body");

    let mut blocks: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for line in section.lines() {
        // Data rows: | `Block` | `counter` | ... (skip header/divider).
        let mut cells = line.split('|').map(str::trim);
        let Some("") = cells.next() else { continue };
        let (Some(block), Some(counter)) = (cells.next(), cells.next()) else { continue };
        let strip =
            |s: &str| s.strip_prefix('`').and_then(|s| s.strip_suffix('`')).map(String::from);
        if let (Some(block), Some(counter)) = (strip(block), strip(counter)) {
            blocks.entry(block).or_default().push(counter);
        }
    }
    blocks
}

fn names(pairs: &[(&'static str, u64)]) -> Vec<String> {
    pairs.iter().map(|(k, _)| (*k).to_string()).collect()
}

#[test]
fn documented_counter_table_matches_as_pairs_exactly() {
    let documented = documented_counters();

    let expected: BTreeMap<String, Vec<String>> = [
        ("BatchStats".to_string(), names(&BatchStats::default().as_pairs())),
        ("RewriteStats".to_string(), names(&RewriteStats::default().as_pairs())),
        ("CacheStats".to_string(), names(&CacheStats::default().as_pairs())),
        ("ShardedCacheStats".to_string(), names(&ShardedCacheStats::default().as_pairs())),
        ("ServiceStats".to_string(), names(&ServiceStats::default().as_pairs())),
        ("AdmissionStats".to_string(), names(&AdmissionStats::default().as_pairs())),
        ("NetStats".to_string(), names(&NetStats::default().as_pairs())),
    ]
    .into_iter()
    .collect();

    assert_eq!(
        documented.keys().collect::<Vec<_>>(),
        expected.keys().collect::<Vec<_>>(),
        "EXPERIMENTS.md documents a different set of stats blocks than the code exports"
    );
    for (block, keys) in &expected {
        assert_eq!(
            &documented[block], keys,
            "`{block}`: EXPERIMENTS.md rows must list exactly its as_pairs keys, in order"
        );
    }
}

#[test]
fn every_block_has_a_meaning_column() {
    // Each documented row carries non-empty provenance + meaning cells
    // (columns 3 and 4) — a bare name row would defeat the table's
    // purpose.
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/EXPERIMENTS.md"))
        .expect("EXPERIMENTS.md exists");
    let section =
        text.split("## Exported stats counters").nth(1).unwrap().split("\n## ").next().unwrap();
    let mut rows = 0;
    for line in section.lines() {
        if !line.starts_with("| `") {
            continue;
        }
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        assert!(cells.len() >= 6, "malformed table row: {line}");
        assert!(!cells[3].is_empty() && !cells[4].is_empty(), "empty cells in: {line}");
        rows += 1;
    }
    // 7 + 6 + 3 + 6 + 5 + 4 + 7 counters across the seven blocks.
    assert_eq!(rows, 38, "expected one row per exported counter");
}
