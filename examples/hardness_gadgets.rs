//! The §6 hardness constructions, executed.
//!
//! Theorem 6.3 and Proposition 6.2 prove lower bounds by encoding
//! propositional model counting into μ. This example *runs* those
//! encodings: it builds the gadget database for a random 3CNF/3DNF,
//! computes μ with the exact order-fragment evaluator, and checks it
//! equals `#ψ/2ⁿ` from brute-force counting — the identity at the heart
//! of both proofs.
//!
//! ```text
//! cargo run --release --example hardness_gadgets
//! ```

use qarith::core::reductions::{encode_3cnf, encode_3dnf, random_instance};
use qarith::core::{afpras, AfprasOptions, CertaintyEngine, MeasureOptions};
use qarith::engine::ground;
use qarith::prelude::*;

fn main() {
    let engine = CertaintyEngine::new(MeasureOptions::default());

    println!("== Theorem 6.3 gadget: FO(<) with μ(q, D_ψ) = #ψ/2ⁿ (3CNF) ==\n");
    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "vars", "clauses", "#ψ", "#ψ/2ⁿ", "exact μ", "AFPRAS"
    );
    for (vars, clauses, seed) in [(4, 5, 1u64), (5, 7, 2), (6, 9, 3), (6, 12, 4)] {
        let psi = random_instance(vars, clauses, seed);
        let count = psi.count_cnf();
        let expected = count as f64 / (1u64 << vars) as f64;

        let (q, db) = encode_3cnf(&psi);
        let phi = ground::ground(&q, &db, &Tuple::new(vec![])).unwrap();
        let exact = engine.nu(&phi).unwrap();
        let sampled =
            afpras::estimate_nu(&phi, &AfprasOptions { epsilon: 0.02, ..AfprasOptions::default() })
                .unwrap();

        println!(
            "{vars:>6} {clauses:>8} {count:>8} {expected:>12.6} {:>12.6} {:>12.6}",
            exact.value, sampled.estimate
        );
        assert_eq!(
            exact.exact.unwrap(),
            Rational::new(count as i128, 1i128 << vars),
            "exact evaluator must reproduce the counting identity"
        );
        assert!((sampled.estimate - expected).abs() < 0.04);
    }

    println!("\n== Proposition 6.2 gadget: CQ(<) with μ(q, D) = #ψ/2ᵏ (3DNF) ==\n");
    println!("{:>6} {:>8} {:>8} {:>12} {:>12}", "vars", "terms", "#ψ", "#ψ/2ᵏ", "exact μ");
    for (vars, terms, seed) in [(4, 3, 11u64), (5, 4, 12), (6, 6, 13)] {
        let psi = random_instance(vars, terms, seed);
        let count = psi.count_dnf();
        let expected = count as f64 / (1u64 << vars) as f64;

        let (q, db) = encode_3dnf(&psi);
        assert!(q.fragment().conjunctive, "Proposition 6.2 needs a conjunctive query");
        let phi = ground::ground(&q, &db, &Tuple::new(vec![])).unwrap();
        let exact = engine.nu(&phi).unwrap();

        println!("{vars:>6} {terms:>8} {count:>8} {expected:>12.6} {:>12.6}", exact.value);
        assert_eq!(exact.exact.unwrap(), Rational::new(count as i128, 1i128 << vars));
    }

    println!("\nboth reductions verified: μ computes scaled model counts, so");
    println!("exact computation is #P-hard (Prop 6.2) and no FPRAS can exist");
    println!("for FO(<) unless NP ⊆ BPP (Thm 6.3).");
}
