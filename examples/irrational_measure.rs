//! Proposition 6.1: the measure of certainty can be **irrational** even
//! for a single linear constraint — which is why approximation schemes
//! are unavoidable.
//!
//! The query `q = ∃x,y R(x,y) ∧ (x ≥ 0) ∧ (y ≤ α·x)` on the database
//! `R = {(⊤, ⊤′)}` grounds to the planar wedge `z0 ≥ 0 ∧ z1 ≤ α·z0`,
//! whose measure is `(arctan α + π/2)/2π` — rational only for
//! α ∈ {0, ±1} (where the arctangent is a rational multiple of π).
//!
//! ```text
//! cargo run --release --example irrational_measure
//! ```

use qarith::core::{afpras, AfprasOptions, CertaintyEngine, MeasureOptions};
use qarith::engine::ground;
use qarith::prelude::*;

fn wedge_db() -> Database {
    let mut db = Database::new();
    let schema = RelationSchema::new("R", vec![Column::num("x"), Column::num("y")]).unwrap();
    let mut r = Relation::empty(schema);
    r.insert_values(vec![Value::NumNull(NumNullId(0)), Value::NumNull(NumNullId(1))]).unwrap();
    db.add_relation(r).unwrap();
    db
}

fn wedge_query(db: &Database, alpha: &str) -> Query {
    Query::boolean(
        Formula::exists(
            vec![TypedVar::num("x"), TypedVar::num("y")],
            Formula::and(vec![
                Formula::rel("R", vec![Arg::Num(NumTerm::var("x")), Arg::Num(NumTerm::var("y"))]),
                Formula::cmp(NumTerm::var("x"), CompareOp::Ge, NumTerm::int(0)),
                Formula::cmp(
                    NumTerm::var("y"),
                    CompareOp::Le,
                    NumTerm::decimal(alpha).mul(NumTerm::var("x")),
                ),
            ]),
        ),
        &db.catalog(),
    )
    .unwrap()
}

fn main() {
    let db = wedge_db();
    let engine = CertaintyEngine::new(MeasureOptions::default());
    let pi = std::f64::consts::PI;

    println!("Proposition 6.1: μ for q = ∃x,y R(x,y) ∧ x ≥ 0 ∧ y ≤ α·x on R = {{(⊤,⊤′)}}");
    println!(
        "\n{:>6}  {:>12}  {:>12}  {:>12}  rational?",
        "α", "closed form", "exact arcs", "AFPRAS ε=.01"
    );

    for (alpha, rational) in [
        ("-2", false),
        ("-1", true),
        ("-0.5", false),
        ("0", true),
        ("0.5", false),
        ("1", true),
        ("2", false),
    ] {
        let q = wedge_query(&db, alpha);
        let phi = ground::ground(&q, &db, &Tuple::new(vec![])).unwrap();

        // Auto method: the 2-D linear exact arc evaluator.
        let exact = engine.nu(&phi).unwrap();
        // Sampled, for comparison.
        let sampled =
            afpras::estimate_nu(&phi, &AfprasOptions { epsilon: 0.01, ..AfprasOptions::default() })
                .unwrap();

        let a: f64 = alpha.parse().unwrap();
        let closed = (a.atan() + pi / 2.0) / (2.0 * pi);
        println!(
            "{alpha:>6}  {closed:>12.6}  {:>12.6}  {:>12.6}  {}",
            exact.value,
            sampled.estimate,
            if rational { "yes" } else { "no (arctan)" }
        );
        assert!((exact.value - closed).abs() < 1e-9);
        assert!((sampled.estimate - closed).abs() < 0.02);
    }

    println!("\nrational cases: α = 0 → 1/4;  α = 1 → 3/8;  α = −1 → 1/8");
    println!("(2^-3 and 3·2^-3 because arctan(±1) = ±π/4)");
}
