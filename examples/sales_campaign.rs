//! The paper's introduction example, end to end.
//!
//! A sales team predicts campaign effectiveness from an incomplete
//! database: `Products(id, seg, rrp, dis)`, `Competition(id, seg, p)`
//! with a null price `⊥`, a null rrp `⊥′`, and an unknown excluded
//! product `⊥″`. The segment `s` is an answer under the constraint the
//! paper displays as equation (1):
//!
//! `(α′ ≥ 0) ∧ (α ≥ 8) ∧ (0.7·α′ ≥ α)`,
//!
//! whose measure is `(π/2 − arctan(10/7))/2π ≈ 0.097` — i.e. ≈ 0.388 of
//! the positive quadrant, the number the introduction quotes.
//!
//! ```text
//! cargo run --release --example sales_campaign
//! ```

use qarith::constraints::{Atom, ConstraintOp, Polynomial, QfFormula, Var};
use qarith::core::exact::arcs2d;
use qarith::core::{afpras, AfprasOptions};
use qarith::engine::ground;
use qarith::prelude::*;

fn z(i: u32) -> Polynomial {
    Polynomial::var(Var(i))
}

fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
    QfFormula::atom(Atom::new(p, op))
}

/// The intro database: two products in segment "s", one competitor with
/// unknown price, one unknown excluded product.
fn build_database() -> Database {
    let mut db = Database::new();

    let products = RelationSchema::new(
        "Products",
        vec![Column::base("id"), Column::base("seg"), Column::num("rrp"), Column::num("dis")],
    )
    .unwrap();
    let mut p = Relation::empty(products);
    p.insert_values(vec![
        Value::str("id1"),
        Value::str("s"),
        Value::num(10),
        Value::decimal("0.8"),
    ])
    .unwrap();
    p.insert_values(vec![
        Value::str("id2"),
        Value::str("s"),
        Value::NumNull(NumNullId(1)), // ⊥′ (α′): unknown rrp
        Value::decimal("0.7"),
    ])
    .unwrap();
    db.add_relation(p).unwrap();

    let competition = RelationSchema::new(
        "Competition",
        vec![Column::base("id"), Column::base("seg"), Column::num("p")],
    )
    .unwrap();
    let mut c = Relation::empty(competition);
    c.insert_values(vec![
        Value::str("c"),
        Value::str("s"),
        Value::NumNull(NumNullId(0)), // ⊥ (α): unknown competitor price
    ])
    .unwrap();
    db.add_relation(c).unwrap();

    let excluded =
        RelationSchema::new("Excluded", vec![Column::base("id"), Column::base("seg")]).unwrap();
    let mut e = Relation::empty(excluded);
    e.insert_values(vec![Value::BaseNull(BaseNullId(0)), Value::str("s")]).unwrap();
    db.add_relation(e).unwrap();

    db
}

/// The intro query, parameterized by the comparison direction (the
/// paper's prose and its displayed constraint (1) disagree on the sign;
/// see EXPERIMENTS.md, V1).
fn intro_query(db: &Database, op: CompareOp) -> Query {
    let body = Formula::forall(
        vec![
            TypedVar::base("i"),
            TypedVar::num("r"),
            TypedVar::num("d"),
            TypedVar::base("ip"),
            TypedVar::num("p"),
        ],
        Formula::implies(
            Formula::and(vec![
                Formula::rel(
                    "Products",
                    vec![
                        Arg::Base(BaseTerm::var("i")),
                        Arg::Base(BaseTerm::var("s")),
                        Arg::Num(NumTerm::var("r")),
                        Arg::Num(NumTerm::var("d")),
                    ],
                ),
                Formula::not(Formula::rel(
                    "Excluded",
                    vec![Arg::Base(BaseTerm::var("i")), Arg::Base(BaseTerm::var("s"))],
                )),
                Formula::rel(
                    "Competition",
                    vec![
                        Arg::Base(BaseTerm::var("ip")),
                        Arg::Base(BaseTerm::var("s")),
                        Arg::Num(NumTerm::var("p")),
                    ],
                ),
            ]),
            Formula::and(vec![
                Formula::cmp(NumTerm::var("r").mul(NumTerm::var("d")), op, NumTerm::var("p")),
                Formula::cmp(NumTerm::var("r"), CompareOp::Ge, NumTerm::int(0)),
                Formula::cmp(NumTerm::var("d"), CompareOp::Ge, NumTerm::int(0)),
                Formula::cmp(NumTerm::var("p"), CompareOp::Ge, NumTerm::int(0)),
            ]),
        ),
    );
    Query::new(vec![TypedVar::base("s")], body, &db.catalog()).unwrap()
}

fn main() {
    let pi = std::f64::consts::PI;
    let db = build_database();
    println!("intro database: {db:?}\n");

    // ----- The displayed constraint (1), evaluated exactly -------------
    let seven_tenths = Polynomial::constant(Rational::new(7, 10));
    let eq1 = QfFormula::and([
        atom(z(1), ConstraintOp::Ge), // α′ ≥ 0
        atom(z(0) - Polynomial::constant(Rational::from_int(8)), ConstraintOp::Ge), // α ≥ 8
        atom(seven_tenths.clone() * z(1) - z(0), ConstraintOp::Ge), // 0.7·α′ ≥ α
    ]);
    let nu = arcs2d::exact_arc_measure(&eq1);
    let closed = (pi / 2.0 - (10.0f64 / 7.0).atan()) / (2.0 * pi);
    println!("constraint (1): (α′ ≥ 0) ∧ (α ≥ 8) ∧ (0.7·α′ ≥ α)");
    println!("  ν(φ)                 = {nu:.6}   (closed form {closed:.6})");
    println!("  share of +quadrant   = {:.3}   (paper: ≈ 0.388)", 4.0 * nu);
    assert!((nu - closed).abs() < 1e-12);
    assert!((4.0 * nu - 0.388).abs() < 2e-3);

    // Deepening the discount (0.7 → 0.5) shrinks this wedge: being
    // undersold even at the deeper discount is a stronger condition, so
    // its measure drops.
    let half = Polynomial::constant(Rational::new(1, 2));
    let eq1_deeper = QfFormula::and([
        atom(z(1), ConstraintOp::Ge),
        atom(z(0) - Polynomial::constant(Rational::from_int(8)), ConstraintOp::Ge),
        atom(half * z(1) - z(0), ConstraintOp::Ge),
    ]);
    let nu_deeper = arcs2d::exact_arc_measure(&eq1_deeper);
    println!(
        "  with discount 0.5    = {nu_deeper:.6}   (< {nu:.6}: deeper discount, smaller wedge)"
    );
    assert!(nu_deeper < nu, "0.5·α′ ≥ α is a *smaller* wedge");
    // (Geometrically the wedge arctan boundary moves from 10/7 to 2 —
    // the paper's "approximately half the quadrant" remark matches the
    // complementary reading; both values are printed for transparency.)

    // ----- The full query, grounded by Proposition 5.3 -----------------
    // As written in the prose (r·d ≤ p), grounding produces
    // z0 ≥ 8 ∧ z1 ≥ 0 ∧ 0.7·z1 ≤ z0, measure arctan(10/7)/2π.
    let engine = CertaintyEngine::new(MeasureOptions::default());
    let candidate = Tuple::new(vec![Value::str("s")]);

    let q_as_written = intro_query(&db, CompareOp::Le);
    let phi = ground::ground(&q_as_written, &db, &candidate).unwrap();
    let est = engine.nu(&phi).unwrap();
    let closed_le = (10.0f64 / 7.0).atan() / (2.0 * pi);
    println!(
        "\nquery as written (r·d ≤ p): μ(q, D, s) = {:.6} (closed form {closed_le:.6})",
        est.value
    );
    assert!((est.value - closed_le).abs() < 1e-9);

    // With the comparison flipped to match constraint (1)'s wedge, the
    // id1 constraint becomes 8 ≥ α, which collapses the asymptotic
    // measure to 0 — evidence that the paper's (1) silently dropped it.
    let q_flipped = intro_query(&db, CompareOp::Ge);
    let phi = ground::ground(&q_flipped, &db, &candidate).unwrap();
    let est = engine.nu(&phi).unwrap();
    println!("query flipped (r·d ≥ p):    μ(q, D, s) = {:.6}", est.value);

    // ----- AFPRAS agreement on constraint (1) ---------------------------
    let opts = AfprasOptions { epsilon: 0.01, ..AfprasOptions::default() };
    let sampled = afpras::estimate_nu(&eq1, &opts).unwrap();
    println!(
        "\nAFPRAS on constraint (1): {:.4} with m = {} samples (exact {nu:.4})",
        sampled.estimate, sampled.samples
    );
    assert!((sampled.estimate - nu).abs() < 0.02);
}
