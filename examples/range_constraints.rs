//! The §10 extension: conditioning the measure on attribute constraints.
//!
//! "Most commonly we have restrictions on ranges of numerical
//! attributes. For example, price is expected to be positive …" — the
//! paper proposes adding such constraints "in both the numerator and
//! denominator of the ratio defining the measure of certainty". This
//! example does exactly that for the intro scenario: prices are
//! non-negative, so the analyst conditions on the positive quadrant and
//! gets the paper's 0.388 — a number 4× more informative than the
//! unconditional 0.097, because it no longer charges the answer for
//! sign combinations the schema already excludes.
//!
//! ```text
//! cargo run --release --example range_constraints
//! ```

use qarith::constraints::{Atom, ConstraintOp, Polynomial, QfFormula, Var};
use qarith::core::{CertaintyEngine, MeasureError, MeasureOptions};
use qarith::prelude::*;

fn z(i: u32) -> Polynomial {
    Polynomial::var(Var(i))
}

fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
    QfFormula::atom(Atom::new(p, op))
}

fn main() {
    let engine = CertaintyEngine::new(MeasureOptions::default());

    // The intro example's constraint (1):
    // z1 ≥ 0 ∧ z0 ≥ 8 ∧ 0.7·z1 ≥ z0   (z0 = competitor price, z1 = rrp)
    let seven_tenths = Polynomial::constant(Rational::new(7, 10));
    let eq1 = QfFormula::and([
        atom(z(1), ConstraintOp::Ge),
        atom(z(0) - Polynomial::constant(Rational::from_int(8)), ConstraintOp::Ge),
        atom(seven_tenths * z(1) - z(0), ConstraintOp::Ge),
    ]);

    // Unconditional: every real interpretation of (z0, z1) is allowed.
    let unconditional = engine.nu(&eq1).unwrap();
    println!("unconditional            ν(φ)        = {:.6}", unconditional.value);

    // Prices are non-negative: condition on the positive quadrant.
    let prices_nonneg =
        QfFormula::and([atom(z(0), ConstraintOp::Ge), atom(z(1), ConstraintOp::Ge)]);
    let conditional = engine.conditional_nu(&eq1, &prices_nonneg).unwrap();
    println!(
        "prices ≥ 0               ν(φ | ρ)     = {:.6}   (the paper's ≈ 0.388)",
        conditional.value
    );
    assert!((conditional.value - 4.0 * unconditional.value).abs() < 1e-9);

    // A ratio constraint is also scale-insensitive: suppose the analyst
    // additionally knows the competitor never prices above twice the rrp.
    let ratio_cap = QfFormula::and([
        prices_nonneg.clone(),
        atom(z(0) - Polynomial::constant(Rational::from_int(2)) * z(1), ConstraintOp::Le),
    ]);
    let tighter = engine.conditional_nu(&eq1, &ratio_cap).unwrap();
    println!("…and price ≤ 2·rrp       ν(φ | ρ′)    = {:.6}", tighter.value);
    assert!(tighter.value > conditional.value, "a tighter prior raises confidence here");

    // Bounded ranges are *not* expressible in the asymptotic model: the
    // condition dis ∈ [0, 1] occupies a vanishing share of the ball.
    let bounded = QfFormula::and([
        atom(z(1), ConstraintOp::Ge),
        atom(z(1) - Polynomial::one(), ConstraintOp::Le),
    ]);
    match engine.conditional_nu(&eq1, &bounded) {
        Err(MeasureError::DegenerateCondition) => {
            println!("\ndis ∈ [0,1]: rejected as degenerate — bounded ranges have");
            println!("asymptotic measure zero; the §10 remark needs a fixed-scale");
            println!("model for those, which is outside the paper's framework.");
        }
        other => panic!("expected a degenerate-condition error, got {other:?}"),
    }
}
