//! The §9 decision-support workload at example scale: generate a sales
//! database, run the paper's three SQL queries, and print each candidate
//! answer with its confidence level — the analyst-facing output the
//! paper's system produces.
//!
//! ```text
//! cargo run --release --example decision_support
//! ```

use qarith::core::AfprasOptions;
use qarith::datagen::sales::{paper_queries, sales_catalog, sales_database, SalesScale};
use qarith::engine::cq::{self, CqOptions};
use qarith::prelude::*;
use qarith::sql;

fn main() {
    // A small database with a raised null rate so uncertainty is visible.
    let scale = SalesScale { null_rate: 0.25, ..SalesScale::small() };
    let db = sales_database(&scale, 2020);
    let catalog = sales_catalog();
    let stats = db.stats();
    println!(
        "sales database: {} tuples, {} numerical nulls (null rate {:.0}%)\n",
        stats.tuples,
        stats.num_nulls,
        scale.null_rate * 100.0
    );

    let engine = CertaintyEngine::new(MeasureOptions {
        afpras: AfprasOptions::with_epsilon(0.02),
        ..MeasureOptions::default()
    });

    for (name, sql_text) in paper_queries() {
        println!("── {name} ──────────────────────────────────────");
        println!("{sql_text}\n");
        let lowered = sql::compile(sql_text, &catalog).expect("paper query compiles");
        let candidates =
            cq::execute(&lowered.query, &db, &CqOptions::with_limit(lowered.limit.unwrap_or(25)))
                .expect("execution succeeds");

        let answers = engine.measure_candidates(candidates).expect("measures computed");
        print!("{}", qarith::core::report::render_answers(&answers));
        println!("\n{}\n", qarith::core::report::summarize(&answers));
    }
}
