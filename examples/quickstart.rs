//! Quickstart: the paper's motivating example.
//!
//! "Look at a very simple example: a query σ_{A>B}(R) on relation R with
//! attributes A and B and a single tuple (⊥₁, ⊥₂) with two nulls. Should
//! the tuple be selected? If we know nothing about ⊥₁ and ⊥₂, it seems
//! reasonable to say that with probability 1/2 the tuple will be in the
//! answer."
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qarith::prelude::*;

fn main() {
    // Relation R(a: base, A: num, B: num) with the single tuple (r1, ⊥₁, ⊥₂).
    let mut db = Database::new();
    let schema =
        RelationSchema::new("R", vec![Column::base("a"), Column::num("A"), Column::num("B")])
            .unwrap();
    let mut r = Relation::empty(schema);
    r.insert_values(vec![
        Value::str("r1"),
        Value::NumNull(NumNullId(0)),
        Value::NumNull(NumNullId(1)),
    ])
    .unwrap();
    db.add_relation(r).unwrap();
    println!("database: R = {{ (\"r1\", ⊤0, ⊤1) }}");

    // σ_{A>B}(R), projected on the key: q(a) = ∃A,B R(a,A,B) ∧ A > B.
    let q = Query::new(
        vec![TypedVar::base("a")],
        Formula::exists(
            vec![TypedVar::num("A"), TypedVar::num("B")],
            Formula::and(vec![
                Formula::rel(
                    "R",
                    vec![
                        Arg::Base(BaseTerm::var("a")),
                        Arg::Num(NumTerm::var("A")),
                        Arg::Num(NumTerm::var("B")),
                    ],
                ),
                Formula::cmp(NumTerm::var("A"), CompareOp::Gt, NumTerm::var("B")),
            ]),
        ),
        &db.catalog(),
    )
    .unwrap();
    println!("query:    {q}");
    println!("fragment: {}", q.fragment());

    // Measure the certainty of "r1" as an answer. The engine grounds the
    // query (Proposition 5.3) to the constraint z0 > z1 and evaluates its
    // asymptotic spherical measure — exactly 1/2 here, by the exact
    // order-fragment evaluator.
    let engine = CertaintyEngine::new(MeasureOptions::default());
    let candidate = Tuple::new(vec![Value::str("r1")]);
    let est = engine.measure(&q, &db, &candidate).unwrap();
    println!("\nμ(q, D, r1) = {est}");
    assert_eq!(est.exact, Some(Rational::new(1, 2)));

    // The full pipeline: candidates + measures in one call.
    println!("\nanswers with certainty:");
    for a in engine.answers(&q, &db).unwrap() {
        println!("  {}  →  {}", a.tuple, a.certainty);
    }

    // Forcing the Theorem 8.1 sampling scheme gives the same number
    // within its additive ε.
    let sampled = CertaintyEngine::new(
        MeasureOptions { method: MethodChoice::Afpras, ..MeasureOptions::default() }
            .with_epsilon(0.01),
    );
    let est = sampled.measure(&q, &db, &candidate).unwrap();
    println!("\nAFPRAS (ε = 0.01): {est}");
    assert!((est.value - 0.5).abs() < 0.02);
}
