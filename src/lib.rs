//! # qarith — queries with arithmetic on incomplete databases
//!
//! A complete Rust implementation of Console, Hofer & Libkin, *Queries
//! with Arithmetic on Incomplete Databases* (PODS 2020): a framework that
//! assigns a **measure of certainty** `μ(q, D, (a,s)) ∈ [0,1]` to each
//! candidate answer of an FO(+,·,<) query over a database with marked
//! nulls in base-sorted and numerical columns.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`numeric`] | `qarith-numeric` | exact rationals |
//! | [`constraints`] | `qarith-constraints` | polynomials, real formulas, asymptotic truth (Lemma 8.4) |
//! | [`rewrite`] | `qarith-rewrite` | ν-preserving simplification and independence decomposition |
//! | [`types`] | `qarith-types` | two-sorted data model, marked nulls, valuations |
//! | [`query`] | `qarith-query` | FO(+,·,<) AST, type checking, fragments |
//! | [`sql`] | `qarith-sql` | SQL subset parser (the §9 front end) + template fingerprints |
//! | [`engine`] | `qarith-engine` | naive evaluation, CQ executor, grounding (Prop 5.3) |
//! | [`geometry`] | `qarith-geometry` | sampling, LP, hit-and-run, volume, union volumes |
//! | [`core`] | `qarith-core` | the measure: AFPRAS (Thm 8.1), FPRAS (Thm 7.1), exact evaluators, pipeline |
//! | [`serve`] | `qarith-serve` | concurrent query serving: prepared plans, sharded ν-cache, admission |
//! | [`net`] | `qarith-net` | framed TCP wire protocol + `/metrics` over the service |
//! | [`trace`] | `qarith-trace` | request ids, per-stage latency histograms, the slow-query log |
//! | [`datagen`] | `qarith-datagen` | synthetic data, the §9 sales workload |
//!
//! See `examples/quickstart.rs` for a five-minute tour, and
//! `README.md`/`DESIGN.md`/`EXPERIMENTS.md` at the repository root for
//! the map from the paper's definitions, theorems, and figures to this
//! code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qarith_constraints as constraints;
pub use qarith_core as core;
pub use qarith_datagen as datagen;
pub use qarith_engine as engine;
pub use qarith_geometry as geometry;
pub use qarith_net as net;
pub use qarith_numeric as numeric;
pub use qarith_query as query;
pub use qarith_rewrite as rewrite;
pub use qarith_serve as serve;
pub use qarith_sql as sql;
pub use qarith_trace as trace;
pub use qarith_types as types;

/// The most common imports, for examples and downstream users.
///
/// # Measure one formula end to end
///
/// `ν(z₀ > 0)` — "an unknown real is positive" — is exactly 1/2 under
/// the paper's measure (the closed-form dimension-≤1 evaluator fires,
/// so no sampling happens):
///
/// ```
/// use qarith::prelude::*;
///
/// // z0 > 0, as a polynomial constraint over the nulls.
/// let phi = QfFormula::atom(Atom::new(Polynomial::var(ConstraintVar(0)), ConstraintOp::Gt));
/// let engine = CertaintyEngine::default();
/// let nu = engine.nu(&phi).unwrap();
/// assert_eq!(nu.exact, Some(Rational::new(1, 2)));
/// assert_eq!(nu.value, 0.5);
/// ```
///
/// # Run a SQL query against an incomplete database
///
/// The §9 pipeline in miniature: build a database with marked nulls,
/// compile SQL against its catalog, and measure every candidate
/// answer:
///
/// ```
/// use qarith::prelude::*;
///
/// let mut db = Database::new();
/// let schema = RelationSchema::new(
///     "Orders",
///     vec![Column::base("id"), Column::num("price"), Column::num("paid")],
/// ).unwrap();
/// let mut orders = Relation::empty(schema);
/// // Order 1: unknown price, paid 30 — selected only under some valuations.
/// orders.insert_values(vec![Value::int(1), Value::NumNull(NumNullId(0)), Value::num(30)]).unwrap();
/// // Order 2: price 10, paid 30 — selected under every valuation.
/// orders.insert_values(vec![Value::int(2), Value::num(10), Value::num(30)]).unwrap();
/// db.add_relation(orders).unwrap();
///
/// let query = qarith::sql::compile_query(
///     "SELECT O.id FROM Orders O WHERE O.price < 40",
///     &db.catalog(),
/// ).unwrap();
/// let answers = CertaintyEngine::default().answers(&query, &db).unwrap();
/// assert_eq!(answers.len(), 2);
/// assert!(answers.iter().any(|a| a.tuple == Tuple::new(vec![Value::int(2)])
///     && a.certainty.is_certain()));
/// assert!(answers.iter().any(|a| a.tuple == Tuple::new(vec![Value::int(1)])
///     && a.certainty.exact == Some(Rational::new(1, 2))));
/// ```
///
/// # Read a batch's [`BatchStats`](qarith_core::BatchStats)
///
/// Serving the same query through a
/// [`QueryService`](qarith_serve::QueryService) twice: the second
/// request reuses the prepared plan, and its `BatchStats` show every
/// group served from the ν-cache instead of re-measured:
///
/// ```
/// use qarith::prelude::*;
///
/// let mut db = Database::new();
/// let schema = RelationSchema::new(
///     "R",
///     vec![Column::base("id"), Column::num("x"), Column::num("y")],
/// ).unwrap();
/// let mut r = Relation::empty(schema);
/// r.insert_values(vec![Value::int(1), Value::NumNull(NumNullId(0)), Value::NumNull(NumNullId(1))])
///     .unwrap();
/// db.add_relation(r).unwrap();
///
/// let service = QueryService::new(db, ServeConfig::default());
/// let cold = service.query("SELECT R.id FROM R WHERE R.x > R.y").unwrap();
/// assert_eq!((cold.stats.candidates, cold.stats.measured), (1, 1));
///
/// let warm = service.query("select R.id from R where R.x > R.y").unwrap();
/// assert!(warm.plan_cached, "same template fingerprint → prepared plan reused");
/// assert_eq!(warm.stats.measured, 0, "every group served from the ν-cache");
/// assert_eq!(warm.stats.cache_hits, 1);
/// assert_eq!(warm.answers[0].certainty.value, cold.answers[0].certainty.value);
/// ```
pub mod prelude {
    pub use qarith_constraints::canonical::{canonicalize, Canonical, FormulaInterner};
    pub use qarith_constraints::{Atom, ConstraintOp, Polynomial, QfFormula, Var as ConstraintVar};
    pub use qarith_core::{
        AnswerWithCertainty, BatchOptions, BatchOutcome, BatchPlan, BatchStats, CacheStats,
        CertaintyCache, CertaintyEngine, CertaintyEstimate, FactorBudget, MeasureOptions, Method,
        MethodChoice, NuCache, RewriteOptions, RewriteStats,
    };
    pub use qarith_datagen::{QueryFamily, Workload, WorkloadQuery, WorkloadScale, WorkloadSpec};
    pub use qarith_engine::cq::CqOptions;
    pub use qarith_net::{NetClient, NetConfig, NetServer, NetStats};
    pub use qarith_numeric::Rational;
    pub use qarith_query::{Arg, BaseTerm, CompareOp, Formula, NumTerm, Query, TypedVar};
    pub use qarith_rewrite::Rewriter;
    pub use qarith_serve::{
        AdmissionStats, QueryResponse, QueryService, ServeConfig, ServeError, ServiceStats,
        ShardedCacheConfig, ShardedCacheStats, ShardedNuCache,
    };
    pub use qarith_sql::sql_fingerprint;
    pub use qarith_trace::{LatencyStats, RequestId, SlowRecord, Stage, StageSummary, Tracer};
    pub use qarith_types::{
        BaseNullId, BaseValue, Catalog, Column, Database, NumNullId, Relation, RelationSchema,
        Sort, Tuple, Valuation, Value,
    };
}
