//! # qarith — queries with arithmetic on incomplete databases
//!
//! A complete Rust implementation of Console, Hofer & Libkin, *Queries
//! with Arithmetic on Incomplete Databases* (PODS 2020): a framework that
//! assigns a **measure of certainty** `μ(q, D, (a,s)) ∈ [0,1]` to each
//! candidate answer of an FO(+,·,<) query over a database with marked
//! nulls in base-sorted and numerical columns.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`numeric`] | `qarith-numeric` | exact rationals |
//! | [`constraints`] | `qarith-constraints` | polynomials, real formulas, asymptotic truth (Lemma 8.4) |
//! | [`rewrite`] | `qarith-rewrite` | ν-preserving simplification and independence decomposition |
//! | [`types`] | `qarith-types` | two-sorted data model, marked nulls, valuations |
//! | [`query`] | `qarith-query` | FO(+,·,<) AST, type checking, fragments |
//! | [`sql`] | `qarith-sql` | SQL subset parser (the §9 front end) |
//! | [`engine`] | `qarith-engine` | naive evaluation, CQ executor, grounding (Prop 5.3) |
//! | [`geometry`] | `qarith-geometry` | sampling, LP, hit-and-run, volume, union volumes |
//! | [`core`] | `qarith-core` | the measure: AFPRAS (Thm 8.1), FPRAS (Thm 7.1), exact evaluators, pipeline |
//! | [`datagen`] | `qarith-datagen` | synthetic data, the §9 sales workload |
//!
//! See `examples/quickstart.rs` for a five-minute tour, and
//! `DESIGN.md`/`EXPERIMENTS.md` at the repository root for the map from
//! the paper's definitions, theorems, and figures to this code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qarith_constraints as constraints;
pub use qarith_core as core;
pub use qarith_datagen as datagen;
pub use qarith_engine as engine;
pub use qarith_geometry as geometry;
pub use qarith_numeric as numeric;
pub use qarith_query as query;
pub use qarith_rewrite as rewrite;
pub use qarith_sql as sql;
pub use qarith_types as types;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use qarith_constraints::canonical::{canonicalize, Canonical, FormulaInterner};
    pub use qarith_core::{
        AnswerWithCertainty, BatchOptions, BatchOutcome, BatchStats, CacheStats, CertaintyEngine,
        CertaintyEstimate, FactorBudget, MeasureOptions, Method, MethodChoice, NuCache,
        RewriteOptions, RewriteStats,
    };
    pub use qarith_datagen::{QueryFamily, Workload, WorkloadQuery, WorkloadScale, WorkloadSpec};
    pub use qarith_engine::cq::CqOptions;
    pub use qarith_numeric::Rational;
    pub use qarith_query::{Arg, BaseTerm, CompareOp, Formula, NumTerm, Query, TypedVar};
    pub use qarith_rewrite::Rewriter;
    pub use qarith_types::{
        BaseNullId, BaseValue, Catalog, Column, Database, NumNullId, Relation, RelationSchema,
        Sort, Tuple, Valuation, Value,
    };
}
